"""Common interface for feature-vector classifiers (the baselines).

The paper compares the GCN against MLP, logistic regression (LoR),
random forest (RFC), SVM and EBM.  Those baselines see only each node's
own feature vector — precisely the contrast the paper draws: they
"focus solely on node attributes ... disregarding structural
information".
"""

from __future__ import annotations

from typing import Dict, Optional, Type

import numpy as np

from repro.utils.errors import ModelError


class BaseClassifier:
    """Binary classifier over per-node feature vectors."""

    name: str = "base"

    def fit(self, x: np.ndarray, y: np.ndarray) -> "BaseClassifier":
        raise NotImplementedError

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """``(N, 2)`` class probabilities."""
        raise NotImplementedError

    def predict(self, x: np.ndarray) -> np.ndarray:
        """``(N,)`` hard class labels."""
        return self.predict_proba(x).argmax(axis=1)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on ``(x, y)``."""
        return float((self.predict(x) == np.asarray(y)).mean())

    @staticmethod
    def _check_fitted(flag: bool) -> None:
        if not flag:
            raise ModelError("predict before fit")

    @staticmethod
    def _check_training_data(x: np.ndarray, y: np.ndarray) -> None:
        x = np.asarray(x)
        y = np.asarray(y)
        if x.ndim != 2 or len(x) != len(y):
            raise ModelError("x must be (N, F) aligned with y")
        if len(np.unique(y)) < 2:
            raise ModelError("training data has a single class")


_REGISTRY: Dict[str, Type[BaseClassifier]] = {}


def register_classifier(name: str):
    """Class decorator adding a baseline to the registry used by the
    Figure 3/4 comparison benchmarks."""

    def wrap(cls: Type[BaseClassifier]) -> Type[BaseClassifier]:
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return wrap


def make_classifier(name: str, **kwargs) -> BaseClassifier:
    """Instantiate a registered baseline by short name."""
    if name not in _REGISTRY:
        raise ModelError(
            f"unknown classifier {name!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name](**kwargs)


def registered_classifiers() -> Dict[str, Type[BaseClassifier]]:
    """The registry (name -> class)."""
    return dict(_REGISTRY)
