"""Global feature-importance aggregation (§3.5, Eq. 3).

Per-node explanations are combined two ways, exactly as the paper
describes: mean feature scores over all explained nodes, and the
average of per-node feature *rankings* (Eq. 3, rank 1 = most
important), which drives Figure 5(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.explain.gnn_explainer import Explanation
from repro.utils.errors import ModelError


@dataclass
class GlobalImportance:
    """Aggregated feature-importance map for one design (or several)."""

    feature_names: List[str]
    mean_scores: np.ndarray
    average_ranks: np.ndarray  # Eq. 3; lower = more important
    n_explanations: int

    def ranked_features(self) -> List[str]:
        """Feature names sorted by average rank (best first)."""
        order = np.argsort(self.average_ranks)
        return [self.feature_names[i] for i in order]

    def as_rows(self) -> List[Dict[str, object]]:
        """Rows for report rendering."""
        order = np.argsort(self.average_ranks)
        return [
            {
                "feature": self.feature_names[i],
                "mean score": round(float(self.mean_scores[i]), 3),
                "average rank": round(float(self.average_ranks[i]), 3),
            }
            for i in order
        ]


def aggregate_importance(
    explanations: Sequence[Explanation],
) -> GlobalImportance:
    """Combine per-node explanations into the global importance map."""
    if not explanations:
        raise ModelError("no explanations to aggregate")
    feature_names = explanations[0].feature_names
    for explanation in explanations:
        if explanation.feature_names != feature_names:
            raise ModelError("explanations have inconsistent features")

    scores = np.array(
        [explanation.feature_scores for explanation in explanations]
    )
    # Rank 1 = highest score, per node; Eq. 3 averages over nodes.
    ranks = np.argsort(np.argsort(-scores, axis=1), axis=1) + 1
    return GlobalImportance(
        feature_names=list(feature_names),
        mean_scores=scores.mean(axis=0),
        average_ranks=ranks.mean(axis=0).astype(np.float64),
        n_explanations=len(explanations),
    )


def combine_importance(
    maps: Sequence[GlobalImportance],
) -> GlobalImportance:
    """Merge per-design maps into the all-designs view of Figure 5(b),
    weighting each design by its number of explanations."""
    if not maps:
        raise ModelError("no importance maps to combine")
    feature_names = maps[0].feature_names
    for importance_map in maps:
        if importance_map.feature_names != feature_names:
            raise ModelError("maps have inconsistent features")
    total = sum(importance_map.n_explanations for importance_map in maps)
    mean_scores = sum(
        importance_map.mean_scores * importance_map.n_explanations
        for importance_map in maps
    ) / total
    average_ranks = sum(
        importance_map.average_ranks * importance_map.n_explanations
        for importance_map in maps
    ) / total
    return GlobalImportance(
        feature_names=list(feature_names),
        mean_scores=mean_scores,
        average_ranks=average_ranks,
        n_explanations=total,
    )
