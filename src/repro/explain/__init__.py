"""Explainability: GNNExplainer and global feature-importance
aggregation (Eq. 3)."""

from repro.explain.aggregate import (
    GlobalImportance,
    aggregate_importance,
    combine_importance,
)
from repro.explain.gnn_explainer import (
    ExplainerConfig,
    Explanation,
    GNNExplainer,
)

__all__ = [
    "GlobalImportance",
    "aggregate_importance",
    "combine_importance",
    "ExplainerConfig",
    "Explanation",
    "GNNExplainer",
]
