"""GNNExplainer (Ying et al., NeurIPS 2019) for the trained GCN.

For one target node the explainer learns, by gradient descent, a soft
mask over the edges of the node's L-hop computation subgraph and a soft
mask over the input features, maximizing the mutual information with
the model's prediction: minimize the negative log-probability of the
predicted class under the masked graph/features, plus size and entropy
regularizers that push the masks toward small, crisp explanations.

The optimization runs on a *functional* re-execution of the trained
stack over the dense subgraph, so mask gradients flow through the
shared adjacency of every GCN layer — the trained weights themselves
stay frozen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.data import GraphData
from repro.models.gcn import GCNClassifier
from repro.nn.modules import Dropout, GCNConv, LogSoftmax, ReLU, Sequential
from repro.utils.errors import ModelError
from repro.utils.rng import SeedLike, derive_rng


@dataclass
class ExplainerConfig:
    """GNNExplainer optimization settings."""

    epochs: int = 200
    lr: float = 0.05
    edge_size_weight: float = 0.005   # lambda: edge mask L1
    edge_entropy_weight: float = 0.1
    # The feature-size penalty dominates the feature-entropy term so
    # features the prediction does not rely on decay toward 0 instead
    # of being pushed to whichever pole they drift near.
    feature_size_weight: float = 0.2
    feature_entropy_weight: float = 0.02


@dataclass
class Explanation:
    """Explanation of one node's prediction.

    ``feature_scores`` are normalized to mean 1 over the features, so a
    score of ~3 reads "three times the average importance" (matching
    the scale of the paper's Table 2 / Figure 5a).
    """

    node_name: str
    node_index: int
    predicted_class: int
    feature_names: List[str]
    feature_scores: np.ndarray
    subgraph_nodes: List[int]
    #: (source, target, mask weight) over the computation subgraph
    edge_importance: List[Tuple[int, int, float]]

    def feature_ranking(self) -> List[int]:
        """Feature indices sorted most-important first."""
        return list(np.argsort(-self.feature_scores))

    def top_edges(self, count: int = 10) -> List[Tuple[int, int, float]]:
        """Highest-weight subgraph edges."""
        return sorted(self.edge_importance, key=lambda e: -e[2])[:count]


def _sigmoid(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(values, -60.0, 60.0)))


def _layer_plan(model: Sequential) -> List[Tuple]:
    """Extract a functional description of the trained stack."""
    plan: List[Tuple] = []
    for module in model.modules:
        if isinstance(module, GCNConv):
            bias = module.bias.value if module.bias is not None else None
            plan.append(("gcn", module.weight.value, bias))
        elif isinstance(module, ReLU):
            plan.append(("relu",))
        elif isinstance(module, Dropout):
            plan.append(("identity",))  # eval mode
        elif isinstance(module, LogSoftmax):
            plan.append(("logsoftmax",))
        else:
            raise ModelError(
                f"explainer cannot handle layer {type(module).__name__}"
            )
    return plan


def _forward(plan, x, adjacency):
    """Functional forward pass; returns output and per-layer caches."""
    caches = []
    h = x
    for layer in plan:
        kind = layer[0]
        if kind == "gcn":
            _, weight, bias = layer
            xw = h @ weight
            out = adjacency @ xw
            if bias is not None:
                out = out + bias
            caches.append(("gcn", h, xw))
            h = out
        elif kind == "relu":
            mask = h > 0
            caches.append(("relu", mask))
            h = h * mask
        elif kind == "identity":
            caches.append(("identity",))
        elif kind == "logsoftmax":
            shifted = h - h.max(axis=1, keepdims=True)
            out = shifted - np.log(
                np.exp(shifted).sum(axis=1, keepdims=True)
            )
            caches.append(("logsoftmax", out))
            h = out
    return h, caches


def _backward(plan, caches, grad, adjacency, weights_grad_adjacency):
    """Functional backward; returns grad wrt input x and accumulates
    dLoss/dAdjacency into ``weights_grad_adjacency``."""
    for layer, cache in zip(reversed(plan), reversed(caches)):
        kind = layer[0]
        if kind == "gcn":
            _, weight, _ = layer
            _, h_in, xw = cache
            # out = A @ (h W):  dA += G (hW)^T ; dH = A^T G W^T
            weights_grad_adjacency += grad @ xw.T
            grad = (adjacency.T @ grad) @ weight.T
        elif kind == "relu":
            grad = grad * cache[1]
        elif kind == "identity":
            pass
        elif kind == "logsoftmax":
            out = cache[1]
            softmax = np.exp(out)
            grad = grad - softmax * grad.sum(axis=1, keepdims=True)
    return grad


class GNNExplainer:
    """Post-hoc explainer for a fitted :class:`GCNClassifier`."""

    def __init__(self, classifier: GCNClassifier, data: GraphData,
                 config: Optional[ExplainerConfig] = None,
                 seed: SeedLike = 0):
        if classifier.model is None:
            raise ModelError("explain requires a fitted classifier")
        self.classifier = classifier
        self.data = data
        self.config = config or ExplainerConfig()
        self.seed = seed
        self._plan = _layer_plan(classifier.model)
        self._n_hops = sum(1 for layer in self._plan if layer[0] == "gcn")
        # Undirected neighbor sets for subgraph extraction.
        self._neighbors: List[set] = [set() for _ in range(data.n_nodes)]
        for source, target in data.edge_index.T:
            self._neighbors[source].add(int(target))
            self._neighbors[target].add(int(source))

    def _computation_subgraph(self, node_index: int) -> List[int]:
        """Nodes within L hops of the target (L = #GCN layers)."""
        frontier = {node_index}
        reached = {node_index}
        for _ in range(self._n_hops):
            frontier = {
                neighbor
                for node in frontier
                for neighbor in self._neighbors[node]
            } - reached
            reached |= frontier
        return sorted(reached)

    def explain(self, node: "str | int") -> Explanation:
        """Learn masks for one node and return its explanation."""
        data = self.data
        node_index = (
            data.node_index(node) if isinstance(node, str) else int(node)
        )
        if not 0 <= node_index < data.n_nodes:
            raise ModelError(f"node index {node_index} out of range")

        subgraph = self._computation_subgraph(node_index)
        position = {original: i for i, original in enumerate(subgraph)}
        target_position = position[node_index]
        size = len(subgraph)

        # Dense normalized adjacency restricted to the subgraph.  The
        # model's own propagation matrix is reused so masked inference
        # matches training-time normalization.
        a_norm = data.a_norm(
            self.classifier.adjacency_mode, self.classifier.self_loops
        )
        base = np.asarray(a_norm[np.ix_(subgraph, subgraph)].todense())

        x_sub = data.x[subgraph]
        predicted = int(
            self.classifier.log_probs()[node_index].argmax()
        )

        rng = derive_rng(self.seed, "gnn-explainer", str(node_index))
        # Mask parameters: symmetric edge mask over nonzero off-diagonal
        # entries; self-loops stay unmasked (the node always sees itself).
        edge_rows, edge_cols = np.nonzero(
            np.triu(base != 0.0, k=1)
        )
        edge_logits = rng.normal(loc=2.0, scale=0.1, size=len(edge_rows))
        feature_logits = np.zeros(data.n_features)

        config = self.config
        # Adam state
        m_e = np.zeros_like(edge_logits); v_e = np.zeros_like(edge_logits)
        m_f = np.zeros_like(feature_logits); v_f = np.zeros_like(feature_logits)
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        for step in range(1, config.epochs + 1):
            edge_mask = _sigmoid(edge_logits)
            feature_mask = _sigmoid(feature_logits)

            masked_adjacency = base.copy()
            masked_adjacency[edge_rows, edge_cols] *= edge_mask
            masked_adjacency[edge_cols, edge_rows] *= edge_mask
            masked_x = x_sub * feature_mask

            log_probs, caches = _forward(
                self._plan, masked_x, masked_adjacency
            )

            # NLL of the model's own prediction at the target node.
            grad_out = np.zeros_like(log_probs)
            grad_out[target_position, predicted] = -1.0

            grad_adjacency = np.zeros_like(masked_adjacency)
            grad_x = _backward(
                self._plan, caches, grad_out, masked_adjacency,
                grad_adjacency,
            )

            # Chain rule into the mask logits.
            upstream_edges = (
                grad_adjacency[edge_rows, edge_cols]
                * base[edge_rows, edge_cols]
                + grad_adjacency[edge_cols, edge_rows]
                * base[edge_cols, edge_rows]
            )
            grad_edge = upstream_edges * edge_mask * (1.0 - edge_mask)
            grad_feature = (
                (grad_x * x_sub).sum(axis=0)
                * feature_mask * (1.0 - feature_mask)
            )

            # Regularizers: size (L1 of mask) + entropy.
            grad_edge += config.edge_size_weight * edge_mask * (
                1.0 - edge_mask
            )
            grad_feature += config.feature_size_weight * feature_mask * (
                1.0 - feature_mask
            )
            entropy_grad_edge = -np.log(
                np.clip(edge_mask / np.clip(1 - edge_mask, 1e-9, None),
                        1e-9, 1e9)
            )
            grad_edge += (
                config.edge_entropy_weight
                * entropy_grad_edge * edge_mask * (1 - edge_mask)
            )
            entropy_grad_feature = -np.log(
                np.clip(feature_mask / np.clip(1 - feature_mask, 1e-9,
                                               None), 1e-9, 1e9)
            )
            grad_feature += (
                config.feature_entropy_weight
                * entropy_grad_feature * feature_mask * (1 - feature_mask)
            )

            # Adam updates.
            for logits, grads, m, v in (
                (edge_logits, grad_edge, m_e, v_e),
                (feature_logits, grad_feature, m_f, v_f),
            ):
                m *= beta1; m += (1 - beta1) * grads
                v *= beta2; v += (1 - beta2) * grads * grads
                m_hat = m / (1 - beta1 ** step)
                v_hat = v / (1 - beta2 ** step)
                logits -= config.lr * m_hat / (np.sqrt(v_hat) + eps)

        feature_mask = _sigmoid(feature_logits)
        mean = feature_mask.mean()
        scores = feature_mask / mean if mean > 0 else feature_mask

        edge_mask = _sigmoid(edge_logits)
        edges = [
            (subgraph[r], subgraph[c], float(w))
            for r, c, w in zip(edge_rows, edge_cols, edge_mask)
        ]
        return Explanation(
            node_name=data.node_names[node_index],
            node_index=node_index,
            predicted_class=predicted,
            feature_names=list(data.feature_names),
            feature_scores=scores,
            subgraph_nodes=subgraph,
            edge_importance=edges,
        )

    def explain_many(self, nodes: Sequence["str | int"]
                     ) -> List[Explanation]:
        """Explain a batch of nodes."""
        return [self.explain(node) for node in nodes]
