"""Batched GNNExplainer (Ying et al., NeurIPS 2019) for the trained GCN.

For one target node the explainer learns, by gradient descent, a soft
mask over the edges of the node's L-hop computation subgraph and a soft
mask over the input features, maximizing the mutual information with
the model's prediction: minimize the negative log-probability of the
predicted class under the masked graph/features, plus size and entropy
regularizers that push the masks toward small, crisp explanations.

The optimization runs on a *functional* re-execution of the trained
stack (:func:`repro.nn.modules.functional_plan`) so mask gradients flow
through the shared adjacency of every GCN layer — the trained weights
themselves stay frozen.

Engine layout (the §3.5 all-nodes aggregation explains *every* gate,
so this is a throughput-critical path):

* Subgraph structure is cached per computation-subgraph *signature*
  (the exact L-hop node set): the CSR slice of the propagation matrix,
  its transpose permutation, the undirected-edge list and the
  nnz-to-edge gather maps are built once and shared by every node with
  that signature.
* Target nodes are grouped by subgraph size and stacked into
  **block-diagonal batches**: one sparse-matmul forward/backward pass
  per epoch drives K nodes' masks at once.  Blocks cannot interact —
  a CSR product only sums a row's stored entries and the dense
  per-slice matmuls see each block separately — so batched results are
  **bitwise identical** to explaining each node alone.
* Masked propagation stays sparse end to end: per epoch only the CSR
  ``data`` arrays are rewritten through precomputed gathers (no dense
  ``base.copy()``), and the adjacency gradient is evaluated only at
  stored entries via nnz gathers instead of a dense ``G @ (HW)^T``.
* ``explain_many`` fans batches out over a persistent supervised fork
  pool (:class:`repro.utils.workerpool.WorkerPool`): the parent builds
  every subgraph signature and node plan *before* forking, so workers
  inherit the whole cache copy-on-write and spend their lives purely
  in mask optimization; batches stream back with per-unit
  acknowledgment, dead workers are respawned and their batch re-run,
  and a batch that keeps killing its host raises a typed
  ``worker_crash`` error instead of a bare ``BrokenProcessPool``.
  Per-node RNG streams are derived from ``(seed, node_index)`` so
  results are identical for every ``jobs``/``batch_size``
  configuration — including runs where workers were killed mid-flight.

Memory scales with ``batch_size x subgraph_width``: one batch holds
``O(K * S * H_max)`` activations plus ``O(K * nnz)`` gather buffers
(see docs/performance.md, "Explainer scaling").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.data import GraphData
from repro.models.gcn import GCNClassifier
from repro.nn.modules import functional_plan
from repro.utils.errors import ModelError
from repro.utils.parallel import fork_context, map_in_forks, resolve_jobs
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.workerpool import PoolPolicy, WorkerPool

#: Nodes per block-diagonal batch.  Large enough to amortize the
#: per-epoch numpy dispatch over many masks, small enough that one
#: batch's activations stay a few MiB even at 500-node subgraphs.
DEFAULT_BATCH_SIZE = 16


@dataclass
class ExplainerConfig:
    """GNNExplainer optimization settings."""

    epochs: int = 200
    lr: float = 0.05
    edge_size_weight: float = 0.005   # lambda: edge mask L1
    edge_entropy_weight: float = 0.1
    # The feature-size penalty dominates the feature-entropy term so
    # features the prediction does not rely on decay toward 0 instead
    # of being pushed to whichever pole they drift near.
    feature_size_weight: float = 0.2
    feature_entropy_weight: float = 0.02


@dataclass
class Explanation:
    """Explanation of one node's prediction.

    ``feature_scores`` are normalized to mean 1 over the features, so a
    score of ~3 reads "three times the average importance" (matching
    the scale of the paper's Table 2 / Figure 5a).
    """

    node_name: str
    node_index: int
    predicted_class: int
    feature_names: List[str]
    feature_scores: np.ndarray
    subgraph_nodes: List[int]
    #: (source, target, mask weight) over the computation subgraph
    edge_importance: List[Tuple[int, int, float]]

    def feature_ranking(self) -> List[int]:
        """Feature indices sorted most-important first."""
        return list(np.argsort(-self.feature_scores))

    def top_edges(self, count: int = 10) -> List[Tuple[int, int, float]]:
        """Highest-weight subgraph edges."""
        return sorted(self.edge_importance, key=lambda e: -e[2])[:count]


def _sigmoid(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(values, -60.0, 60.0)))


try:  # the kernel scipy's csr @ dense dispatches to
    from scipy.sparse import _sparsetools as _sparsetools_mod

    _CSR_MATVECS = _sparsetools_mod.csr_matvecs
except (ImportError, AttributeError):  # pragma: no cover
    _CSR_MATVECS = None


def _spmm_into(matrix: sp.csr_matrix, dense: np.ndarray,
               out: np.ndarray) -> np.ndarray:
    """``out = matrix @ dense`` into a preallocated buffer.

    Calls the same ``csr_matvecs`` kernel scipy's ``@`` resolves to,
    skipping the per-call dispatch/validation/allocation that
    dominates when the optimizer issues thousands of small products.
    """
    if _CSR_MATVECS is None:  # pragma: no cover - scipy internals moved
        out[:] = matrix @ dense
        return out
    out[:] = 0.0
    _CSR_MATVECS(matrix.shape[0], matrix.shape[1], dense.shape[1],
                 matrix.indptr, matrix.indices, matrix.data,
                 dense.ravel(), out.ravel())
    return out


def undirected_csr(
    edge_index: np.ndarray, n_nodes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """``(indptr, indices)`` of the undirected adjacency structure."""
    source, target = np.asarray(edge_index).reshape(2, -1)
    rows = np.concatenate([source, target])
    cols = np.concatenate([target, source])
    adjacency = sp.csr_matrix(
        (np.ones(len(rows), dtype=np.int8), (rows, cols)),
        shape=(n_nodes, n_nodes),
    )
    adjacency.sum_duplicates()
    adjacency.sort_indices()
    return adjacency.indptr, adjacency.indices


def hop_levels(
    indptr: np.ndarray, indices: np.ndarray, node: int, hops: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Leveled BFS: ``(nodes, levels)`` within ``hops`` of ``node``.

    ``nodes`` is sorted ascending; ``levels[i]`` is the hop distance
    of ``nodes[i]`` from the source.  Frontier expansion gathers all
    neighbor slices of the current frontier in one shot off the CSR
    arrays instead of walking Python sets.
    """
    level = np.full(len(indptr) - 1, -1, dtype=np.int64)
    level[node] = 0
    frontier = np.array([node], dtype=np.int64)
    for hop in range(1, hops + 1):
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Flat gather positions: for each frontier node, the contiguous
        # run indices[start : start + count].
        offsets = np.arange(total) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        neighbors = indices[np.repeat(starts, counts) + offsets]
        fresh = neighbors[level[neighbors] < 0]
        if len(fresh) == 0:
            break
        frontier = np.unique(fresh)
        level[frontier] = hop
    nodes = np.flatnonzero(level >= 0)
    return nodes, level[nodes]


def hop_neighborhood(
    indptr: np.ndarray, indices: np.ndarray, node: int, hops: int
) -> np.ndarray:
    """Sorted nodes within ``hops`` undirected hops of ``node``
    (matches a textbook L-hop BFS exactly — locked in by a hypothesis
    property in tests/test_explain.py)."""
    return hop_levels(indptr, indices, node, hops)[0]


class _SubgraphSignature:
    """Structure shared by every node with one computation subgraph.

    Holds the sparse adjacency slice, its transpose gather, the
    undirected-edge list (upper-triangle, row-major — the mask
    parameter order) and the nnz-position maps that let the optimizer
    rewrite CSR ``data`` directly instead of copying a dense matrix.
    """

    __slots__ = (
        "nodes", "size", "adjacency", "base_data", "coo_rows",
        "coo_cols", "edge_rows", "edge_cols", "nnz_rc", "nnz_cr",
        "cr_valid", "used_mask", "x_sub",
    )

    def __init__(self, a_norm: sp.csr_matrix, x: np.ndarray,
                 nodes: np.ndarray):
        self.nodes = nodes
        self.size = len(nodes)
        sub = a_norm[nodes][:, nodes].tocsr()
        sub.sum_duplicates()
        sub.eliminate_zeros()
        sub.sort_indices()
        self.adjacency = sub
        self.base_data = sub.data.copy()

        coo = sub.tocoo()
        self.coo_rows = coo.row.astype(np.int64)
        self.coo_cols = coo.col.astype(np.int64)
        position = np.full((self.size, self.size), -1, dtype=np.int64)
        position[self.coo_rows, self.coo_cols] = np.arange(sub.nnz)

        # Undirected mask parameters: one logit per upper-triangle
        # entry, in row-major order (the dense np.triu scan order).
        upper = self.coo_cols > self.coo_rows
        self.edge_rows = self.coo_rows[upper]
        self.edge_cols = self.coo_cols[upper]
        self.nnz_rc = position[self.edge_rows, self.edge_cols]
        self.nnz_cr = position[self.edge_cols, self.edge_rows]
        # A structurally one-way pair (possible under row
        # normalization) has no stored reverse entry to mask.
        self.cr_valid = self.nnz_cr >= 0
        # nnz positions the edge-mask gradient actually reads (the
        # diagonal and any unpaired entries never feed a logit).
        used = np.zeros(sub.nnz, dtype=bool)
        used[self.nnz_rc] = True
        used[self.nnz_cr[self.cr_valid]] = True
        self.used_mask = used
        self.x_sub = x[nodes]


class _NodePlan:
    """Per-target backward restriction over one signature.

    The loss gradient starts as a one-hot row at the target, so after
    ``m`` GCN-backward steps it is exactly zero outside the target's
    ``m``-hop ball.  For the GCN layer ``l`` (1-indexed, forward
    order) of an ``L``-layer stack, the incoming gradient during
    backward is live only at rows within ``L - l`` hops — this plan
    precomputes, per layer, the nnz positions whose adjacency gradient
    can be nonzero (``gather_*``) and a transpose slice restricted to
    live gradient rows (``t_struct``/``t_perm``), so the per-epoch
    gathers and sparse products skip the provably-zero majority.
    """

    __slots__ = ("node_index", "signature", "target_position",
                 "gather_idx", "gather_rows", "gather_cols",
                 "t_struct", "t_perm")

    def __init__(self, node_index: int, signature: _SubgraphSignature,
                 levels: np.ndarray, n_hops: int):
        self.node_index = node_index
        self.signature = signature
        self.target_position = int(
            np.searchsorted(signature.nodes, node_index)
        )
        row_level = levels[signature.coo_rows]
        self.gather_idx: List[np.ndarray] = []
        self.gather_rows: List[np.ndarray] = []
        self.gather_cols: List[np.ndarray] = []
        self.t_struct: List[sp.csr_matrix] = []
        self.t_perm: List[np.ndarray] = []
        for layer in range(1, n_hops + 1):
            live = row_level <= n_hops - layer
            idx = np.flatnonzero(live & signature.used_mask)
            self.gather_idx.append(idx)
            self.gather_rows.append(signature.coo_rows[idx])
            self.gather_cols.append(signature.coo_cols[idx])
            # Transpose slice keeping only live-gradient source rows:
            # data carries position+1 so the CSR conversion's sort
            # yields the data-refresh permutation.
            t_idx = np.flatnonzero(live)
            t_sub = sp.csr_matrix(
                (t_idx.astype(np.float64) + 1.0,
                 (signature.coo_cols[t_idx],
                  signature.coo_rows[t_idx])),
                shape=(signature.size, signature.size),
            )
            t_sub.sort_indices()
            self.t_struct.append(t_sub)
            self.t_perm.append(t_sub.data.astype(np.int64) - 1)


class _ExplainScratch:
    """Preallocated buffers for one block-diagonal batch of K nodes.

    All K subgraphs have the same node count S, so dense activations
    stack into ``(K, S, *)`` arrays whose per-slice matmuls are the
    exact serial computation, while the K sparse adjacencies form one
    block-diagonal CSR whose products cannot mix blocks.
    """

    def __init__(self, plans: Sequence[_NodePlan],
                 plan: Sequence[tuple], n_features: int):
        self.plans = list(plans)
        signatures = [node_plan.signature for node_plan in self.plans]
        self.signatures = signatures
        self.n_nodes = len(signatures)
        self.size = signatures[0].size

        adjacency = sp.block_diag(
            [signature.adjacency for signature in signatures],
            format="csr",
        )
        adjacency.sort_indices()
        self.adjacency = adjacency
        self.data = adjacency.data            # mutated every epoch

        nnz_counts = [signature.adjacency.nnz
                      for signature in signatures]
        data_offsets = np.concatenate(
            ([0], np.cumsum(nnz_counts))
        )[:-1]
        row_offsets = self.size * np.arange(self.n_nodes)

        def concat(parts: List[np.ndarray]) -> np.ndarray:
            return np.concatenate(parts) if parts else np.zeros(
                0, dtype=np.int64
            )

        self.base_data = concat(
            [signature.base_data for signature in signatures]
        )
        self.nnz_rc = concat([
            signature.nnz_rc + offset
            for signature, offset in zip(signatures, data_offsets)
        ])
        nnz_cr = concat([
            np.where(signature.cr_valid,
                     signature.nnz_cr + offset, -1)
            for signature, offset in zip(signatures, data_offsets)
        ])
        self.cr_valid = nnz_cr >= 0
        self.all_cr_valid = bool(self.cr_valid.all())
        self.nnz_cr = np.where(self.cr_valid, nnz_cr, 0)
        self.edge_counts = [len(signature.nnz_rc)
                            for signature in signatures]

        self.x_stack = np.stack(
            [signature.x_sub for signature in signatures]
        )
        self.masked_x = np.empty_like(self.x_stack)
        self.upstream = np.zeros(len(self.base_data))

        # Per-GCN-ordinal backward restriction, concatenated across
        # the batch: gather coordinates plus the block-diagonal
        # live-row transpose slices and their data-refresh gathers.
        flat = self.n_nodes * self.size
        self.t_blocks: List[sp.csr_matrix] = []
        self.t_perms: List[np.ndarray] = []
        self.gather_idx: List[np.ndarray] = []
        self.gather_rows: List[np.ndarray] = []
        self.gather_cols: List[np.ndarray] = []
        self.gather_a: List[np.ndarray] = []
        self.gather_b: List[np.ndarray] = []
        self.fwd_out: List[np.ndarray] = []
        self.bwd_spmm: List[np.ndarray] = []
        self.bwd_grad: List[np.ndarray] = []
        gcn_widths = [(layer[1].shape[0], layer[1].shape[1])
                      for layer in plan if layer[0] == "gcn"]
        for ordinal, (w_in, w_out) in enumerate(gcn_widths):
            t_block = sp.block_diag(
                [node_plan.t_struct[ordinal]
                 for node_plan in self.plans],
                format="csr",
            )
            t_block.sort_indices()
            self.t_blocks.append(t_block)
            self.t_perms.append(concat([
                node_plan.t_perm[ordinal] + offset
                for node_plan, offset in zip(self.plans, data_offsets)
            ]))
            idx = concat([
                node_plan.gather_idx[ordinal] + offset
                for node_plan, offset in zip(self.plans, data_offsets)
            ])
            self.gather_idx.append(idx)
            self.gather_rows.append(concat([
                node_plan.gather_rows[ordinal] + offset
                for node_plan, offset in zip(self.plans, row_offsets)
            ]))
            self.gather_cols.append(concat([
                node_plan.gather_cols[ordinal] + offset
                for node_plan, offset in zip(self.plans, row_offsets)
            ]))
            self.gather_a.append(np.empty((len(idx), w_out)))
            self.gather_b.append(np.empty((len(idx), w_out)))
            self.fwd_out.append(np.empty((flat, w_out)))
            self.bwd_spmm.append(np.empty((flat, w_out)))
            self.bwd_grad.append(
                np.empty((self.n_nodes, self.size, w_in))
            )

        # Dense activation buffers, sized off the plan's widths.
        shape = (self.n_nodes, self.size)
        self.xw_buffers: List[Optional[np.ndarray]] = []
        self.relu_buffers: List[Optional[np.ndarray]] = []
        width = n_features
        for layer in plan:
            if layer[0] == "gcn":
                width = layer[1].shape[1]
                self.xw_buffers.append(np.empty(shape + (width,)))
                self.relu_buffers.append(None)
            elif layer[0] == "relu":
                self.xw_buffers.append(None)
                self.relu_buffers.append(
                    np.empty(shape + (width,), dtype=bool)
                )
            else:
                self.xw_buffers.append(None)
                self.relu_buffers.append(None)


def _optimize_masks(
    plan: Sequence[tuple],
    config: ExplainerConfig,
    scratch: _ExplainScratch,
    target_positions: np.ndarray,
    predicted: np.ndarray,
    edge_logits: np.ndarray,
    feature_logits: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the batched mask optimization; returns the final masks.

    ``edge_logits`` is the concatenation of the K nodes' edge-mask
    logits, ``feature_logits`` is ``(K, F)``.  Every numpy op below is
    either elementwise, a per-slice matmul, or a per-row sparse
    product, so the K=1 path IS the serial reference computation.
    """
    batch, size = scratch.n_nodes, scratch.size
    flat = batch * size
    n_classes = [layer[1].shape[1]
                 for layer in plan if layer[0] == "gcn"][-1]
    grad_out = np.zeros((batch, size, n_classes))
    grad_out[np.arange(batch), target_positions, predicted] = -1.0

    # Adam state
    m_e = np.zeros_like(edge_logits)
    v_e = np.zeros_like(edge_logits)
    m_f = np.zeros_like(feature_logits)
    v_f = np.zeros_like(feature_logits)
    beta1, beta2, eps = 0.9, 0.999, 1e-8

    adjacency = scratch.adjacency
    base_data = scratch.base_data
    nnz_rc, nnz_cr = scratch.nnz_rc, scratch.nnz_cr

    for step in range(1, config.epochs + 1):
        edge_mask = _sigmoid(edge_logits)
        feature_mask = _sigmoid(feature_logits)

        # Masked adjacency: rewrite only the stored edge entries (the
        # diagonal keeps its base value — the node always sees itself).
        scratch.data[nnz_rc] = base_data[nnz_rc] * edge_mask
        if scratch.all_cr_valid:
            scratch.data[nnz_cr] = base_data[nnz_cr] * edge_mask
        else:
            valid = scratch.cr_valid
            scratch.data[nnz_cr[valid]] = (
                base_data[nnz_cr[valid]] * edge_mask[valid]
            )
        np.multiply(scratch.x_stack, feature_mask[:, None, :],
                    out=scratch.masked_x)

        # Forward over the block-diagonal subgraph batch.
        h = scratch.masked_x
        caches: List[tuple] = []
        ordinal = 0
        for position, layer in enumerate(plan):
            kind = layer[0]
            if kind == "gcn":
                _, weight, bias = layer
                xw = scratch.xw_buffers[position]
                np.matmul(h, weight, out=xw)
                width = weight.shape[1]
                out2 = scratch.fwd_out[ordinal]
                _spmm_into(adjacency, xw.reshape(flat, width), out2)
                out = out2.reshape(batch, size, width)
                if bias is not None:
                    out += bias
                caches.append(("gcn", xw, ordinal))
                ordinal += 1
                h = out
            elif kind == "relu":
                mask = scratch.relu_buffers[position]
                np.greater(h, 0.0, out=mask)
                caches.append(("relu", mask))
                np.multiply(h, mask, out=h)
            elif kind == "identity":
                caches.append(("identity",))
            elif kind == "logsoftmax":
                shifted = h - h.max(axis=2, keepdims=True)
                out = shifted - np.log(
                    np.exp(shifted).sum(axis=2, keepdims=True)
                )
                caches.append(("logsoftmax", out))
                h = out

        # Backward: NLL of the model's own prediction at each target.
        # The gradient is exactly zero outside the target's shrinking
        # hop ball, so gathers and sparse products run only over each
        # layer's live coordinates (see _NodePlan).
        grad = grad_out
        scratch.upstream[:] = 0.0
        for layer, cache in zip(reversed(plan), reversed(caches)):
            kind = layer[0]
            if kind == "gcn":
                _, weight, _ = layer
                xw, ordinal = cache[1], cache[2]
                width = weight.shape[1]
                # dLoss/dA at live stored entries only:  G (HW)^T
                # gathered over the layer's live nnz coordinates.
                grad_rows = scratch.gather_a[ordinal]
                xw_cols = scratch.gather_b[ordinal]
                g2 = grad.reshape(flat, width)
                np.take(g2, scratch.gather_rows[ordinal],
                        axis=0, out=grad_rows)
                np.take(xw.reshape(flat, width),
                        scratch.gather_cols[ordinal],
                        axis=0, out=xw_cols)
                np.multiply(grad_rows, xw_cols, out=grad_rows)
                scratch.upstream[scratch.gather_idx[ordinal]] += (
                    grad_rows.sum(axis=1)
                )
                t_block = scratch.t_blocks[ordinal]
                np.take(scratch.data, scratch.t_perms[ordinal],
                        out=t_block.data)
                spmm_out = scratch.bwd_spmm[ordinal]
                _spmm_into(t_block, g2, spmm_out)
                grad = scratch.bwd_grad[ordinal]
                np.matmul(spmm_out.reshape(batch, size, width),
                          weight.T, out=grad)
            elif kind == "relu":
                np.multiply(grad, cache[1], out=grad)
            elif kind == "identity":
                pass
            elif kind == "logsoftmax":
                softmax = np.exp(cache[1])
                grad = grad - softmax * grad.sum(axis=2, keepdims=True)

        # Chain rule into the mask logits.
        if scratch.all_cr_valid:
            upstream_edges = (
                scratch.upstream[nnz_rc] * base_data[nnz_rc]
                + scratch.upstream[nnz_cr] * base_data[nnz_cr]
            )
        else:
            upstream_edges = (
                scratch.upstream[nnz_rc] * base_data[nnz_rc]
            )
            valid = scratch.cr_valid
            upstream_edges[valid] += (
                scratch.upstream[nnz_cr[valid]]
                * base_data[nnz_cr[valid]]
            )
        grad_edge = upstream_edges * edge_mask * (1.0 - edge_mask)
        grad_feature = (
            (grad * scratch.x_stack).sum(axis=1)
            * feature_mask * (1.0 - feature_mask)
        )

        # Regularizers: size (L1 of mask) + entropy.
        grad_edge += config.edge_size_weight * edge_mask * (
            1.0 - edge_mask
        )
        grad_feature += config.feature_size_weight * feature_mask * (
            1.0 - feature_mask
        )
        entropy_grad_edge = -np.log(
            np.clip(edge_mask / np.clip(1 - edge_mask, 1e-9, None),
                    1e-9, 1e9)
        )
        grad_edge += (
            config.edge_entropy_weight
            * entropy_grad_edge * edge_mask * (1 - edge_mask)
        )
        entropy_grad_feature = -np.log(
            np.clip(feature_mask / np.clip(1 - feature_mask, 1e-9,
                                           None), 1e-9, 1e9)
        )
        grad_feature += (
            config.feature_entropy_weight
            * entropy_grad_feature * feature_mask * (1 - feature_mask)
        )

        # Adam updates.
        for logits, grads, m, v in (
            (edge_logits, grad_edge, m_e, v_e),
            (feature_logits, grad_feature, m_f, v_f),
        ):
            m *= beta1
            m += (1 - beta1) * grads
            v *= beta2
            v += (1 - beta2) * grads * grads
            m_hat = m / (1 - beta1 ** step)
            v_hat = v / (1 - beta2 ** step)
            logits -= config.lr * m_hat / (np.sqrt(v_hat) + eps)

    return _sigmoid(edge_logits), _sigmoid(feature_logits)


#: Explainer inherited by fork workers (the trained stack and the
#: graph slices are shared copy-on-write, so nothing is pickled).
_WORKER_EXPLAINER: Optional["GNNExplainer"] = None


def _worker_batch(node_indices: List[int]) -> List[Explanation]:
    """Pool entry point: explain one batch in a fork worker."""
    explainer = _WORKER_EXPLAINER
    if explainer is None:
        raise ModelError(
            "explain worker has no inherited context (requires the "
            "fork start method)"
        )
    return explainer._explain_batch(node_indices)


class GNNExplainer:
    """Post-hoc explainer for a fitted :class:`GCNClassifier`."""

    def __init__(self, classifier: GCNClassifier, data: GraphData,
                 config: Optional[ExplainerConfig] = None,
                 seed: SeedLike = 0,
                 batch_size: int = DEFAULT_BATCH_SIZE):
        if classifier.model is None:
            raise ModelError("explain requires a fitted classifier")
        if batch_size < 1:
            raise ModelError(f"batch size {batch_size} must be >= 1")
        self.classifier = classifier
        self.data = data
        self.config = config or ExplainerConfig()
        self.seed = seed
        self.batch_size = batch_size
        self._plan = functional_plan(classifier.model)
        self._n_hops = sum(1 for layer in self._plan
                           if layer[0] == "gcn")
        # Stage-constant products, computed once per explainer: the
        # propagation matrix, the undirected BFS structure, and (on
        # first use) the full-graph prediction every explanation reads
        # its target class from.
        self._a_norm = data.a_norm(
            classifier.adjacency_mode, classifier.self_loops
        ).tocsr()
        self._indptr, self._indices = undirected_csr(
            data.edge_index, data.n_nodes
        )
        self._log_probs: Optional[np.ndarray] = None
        self._subgraphs: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._signatures: Dict[tuple, _SubgraphSignature] = {}
        self._node_plans: Dict[int, _NodePlan] = {}

    # ------------------------------------------------------------------
    # cached stage products
    # ------------------------------------------------------------------
    def log_probs(self) -> np.ndarray:
        """The classifier's full-graph log-probabilities, computed once
        per explainer (the seed engine re-ran this forward pass for
        every single ``explain()`` call just to read one row)."""
        if self._log_probs is None:
            self._log_probs = self.classifier.log_probs()
        return self._log_probs

    def _subgraph_levels(
        self, node_index: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(nodes, hop levels)`` of the L-hop ball."""
        cached = self._subgraphs.get(node_index)
        if cached is None:
            cached = hop_levels(
                self._indptr, self._indices, node_index, self._n_hops
            )
            self._subgraphs[node_index] = cached
        return cached

    def _computation_subgraph(self, node_index: int) -> List[int]:
        """Nodes within L hops of the target (L = #GCN layers)."""
        return [int(node)
                for node in self._subgraph_levels(node_index)[0]]

    def _signature(self, nodes: np.ndarray) -> _SubgraphSignature:
        key = tuple(int(node) for node in nodes)
        signature = self._signatures.get(key)
        if signature is None:
            signature = _SubgraphSignature(
                self._a_norm, self.data.x, nodes
            )
            self._signatures[key] = signature
        return signature

    def _node_plan(self, node_index: int) -> _NodePlan:
        node_plan = self._node_plans.get(node_index)
        if node_plan is None:
            nodes, levels = self._subgraph_levels(node_index)
            node_plan = _NodePlan(
                node_index, self._signature(nodes), levels,
                self._n_hops,
            )
            self._node_plans[node_index] = node_plan
        return node_plan

    def _resolve(self, node: "str | int") -> int:
        node_index = (
            self.data.node_index(node) if isinstance(node, str)
            else int(node)
        )
        if not 0 <= node_index < self.data.n_nodes:
            raise ModelError(f"node index {node_index} out of range")
        return node_index

    # ------------------------------------------------------------------
    # explanation entry points
    # ------------------------------------------------------------------
    def explain(self, node: "str | int") -> Explanation:
        """Learn masks for one node and return its explanation."""
        return self._explain_batch([self._resolve(node)])[0]

    def explain_many(self, nodes: Sequence["str | int"],
                     jobs: int = 1,
                     batch_size: Optional[int] = None,
                     max_worker_restarts: int = 8,
                     heartbeat_interval: float = 5.0,
                     ) -> List[Explanation]:
        """Explain a batch of nodes.

        ``batch_size`` caps how many equal-width subgraphs share one
        block-diagonal optimization (default: the explainer's);
        ``jobs`` fans batches out over a persistent supervised pool of
        fork workers (0 = all cores).  ``max_worker_restarts`` bounds
        how many dead workers the pool respawns (their in-flight batch
        is re-run — per-node RNG derivation keeps the result
        identical); a batch that keeps killing its hosts raises a
        typed :class:`~repro.utils.errors.ModelError` naming the nodes
        instead of a bare ``BrokenProcessPool``.  Results are bitwise
        identical for every configuration.
        """
        global _WORKER_EXPLAINER

        if batch_size is None:
            batch_size = self.batch_size
        if batch_size < 1:
            raise ModelError(f"batch size {batch_size} must be >= 1")
        indices = [self._resolve(node) for node in nodes]
        if not indices:
            return []

        # Group request positions by subgraph width so each batch
        # stacks into regular (K, S, *) arrays; grouping is a pure
        # function of the request, never of jobs.
        by_size: Dict[int, List[int]] = {}
        for position, node_index in enumerate(indices):
            size = len(self._subgraph_levels(node_index)[0])
            by_size.setdefault(size, []).append(position)
        batches: List[List[int]] = []
        for size in sorted(by_size):
            positions = by_size[size]
            for start in range(0, len(positions), batch_size):
                batches.append(positions[start:start + batch_size])

        units = [[indices[position] for position in batch]
                 for batch in batches]
        if (resolve_jobs(jobs) <= 1 or len(units) <= 1
                or fork_context() is None):
            # Supervision-free fallback: same per-unit code in-process.
            _WORKER_EXPLAINER = self
            try:
                outcomes = map_in_forks(_worker_batch, units, jobs)
            finally:
                _WORKER_EXPLAINER = None
        else:
            outcomes = self._pooled_batches(
                units, jobs, max_worker_restarts, heartbeat_interval,
            )

        results: List[Optional[Explanation]] = [None] * len(indices)
        for batch, outcome in zip(batches, outcomes):
            for position, explanation in zip(batch, outcome):
                results[position] = explanation
        return results  # type: ignore[return-value]

    def _pooled_batches(
        self, units: List[List[int]], jobs: int,
        max_worker_restarts: int, heartbeat_interval: float,
    ) -> List[List[Explanation]]:
        """Run explanation batches over the supervised worker pool.

        Every cached stage product — the full-graph prediction, the
        subgraph signatures, and the per-node backward plans — is
        built in the parent *before* the pool forks, so workers
        inherit the complete cache copy-on-write: no signature is ever
        constructed twice, and worker time is pure mask optimization.
        """
        global _WORKER_EXPLAINER

        self.log_probs()
        for unit in units:
            for node_index in unit:
                self._node_plan(node_index)

        pool_policy = PoolPolicy(
            jobs=jobs,
            max_worker_restarts=max_worker_restarts,
            heartbeat_interval=heartbeat_interval,
        )
        ordered: List[Optional[List[Explanation]]] = [None] * len(units)
        _WORKER_EXPLAINER = self
        try:
            with WorkerPool(_worker_batch, pool_policy) as pool:
                for result in pool.run(units):
                    if result.crash is not None:
                        names = ", ".join(
                            self.data.node_names[index]
                            for index in units[result.index]
                        )
                        raise ModelError(
                            f"worker_crash explaining nodes [{names}]"
                            f": {result.crash.describe()}"
                        )
                    if result.error is not None:
                        raise ModelError(
                            f"explanation batch failed in pool "
                            f"worker: {result.error}"
                        )
                    ordered[result.index] = result.value
        finally:
            _WORKER_EXPLAINER = None
        return ordered  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # batch engine
    # ------------------------------------------------------------------
    def _explain_batch(self, node_indices: List[int]
                       ) -> List[Explanation]:
        """Explain K same-width nodes in one block-diagonal batch."""
        data = self.data
        log_probs = self.log_probs()
        node_plans = []
        signatures = []
        target_positions = np.empty(len(node_indices), dtype=np.int64)
        predicted = np.empty(len(node_indices), dtype=np.int64)
        edge_logit_parts = []
        for slot, node_index in enumerate(node_indices):
            node_plan = self._node_plan(node_index)
            node_plans.append(node_plan)
            signature = node_plan.signature
            signatures.append(signature)
            target_positions[slot] = node_plan.target_position
            predicted[slot] = int(log_probs[node_index].argmax())
            rng = derive_rng(self.seed, "gnn-explainer",
                             str(node_index))
            edge_logit_parts.append(rng.normal(
                loc=2.0, scale=0.1, size=len(signature.nnz_rc)
            ))

        scratch = _ExplainScratch(node_plans, self._plan,
                                  data.n_features)
        edge_logits = (
            np.concatenate(edge_logit_parts) if edge_logit_parts
            else np.zeros(0)
        )
        feature_logits = np.zeros(
            (len(node_indices), data.n_features)
        )
        edge_masks, feature_masks = _optimize_masks(
            self._plan, self.config, scratch, target_positions,
            predicted, edge_logits, feature_logits,
        )

        explanations = []
        edge_offset = 0
        for slot, node_index in enumerate(node_indices):
            signature = signatures[slot]
            count = scratch.edge_counts[slot]
            edge_mask = edge_masks[edge_offset:edge_offset + count]
            edge_offset += count
            feature_mask = feature_masks[slot]
            mean = feature_mask.mean()
            scores = feature_mask / mean if mean > 0 else feature_mask
            edges = [
                (int(signature.nodes[r]), int(signature.nodes[c]),
                 float(w))
                for r, c, w in zip(signature.edge_rows,
                                   signature.edge_cols, edge_mask)
            ]
            explanations.append(Explanation(
                node_name=data.node_names[node_index],
                node_index=node_index,
                predicted_class=int(predicted[slot]),
                feature_names=list(data.feature_names),
                feature_scores=scores,
                subgraph_nodes=[int(n) for n in signature.nodes],
                edge_importance=edges,
            ))
        return explanations
