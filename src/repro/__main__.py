"""Command-line interface: ``python -m repro <command>``.

Commands:
    designs                       list the built-in evaluation designs
    analyze DESIGN                run the full Figure 2 pipeline
    campaign DESIGN               run only the FI campaign
    explain DESIGN [NODE ...]     GNNExplainer interpretations
    gridsearch DESIGN             §3.3.2 hyperparameter grid search
    store ACTION                  artifact-store maintenance
    verilog DESIGN                export a design as structural Verilog
    reset-check DESIGN            3-valued reset verification
    optimize DESIGN               constant folding + dead-code stats
    harden DESIGN                 GCN-guided selective TMR report

The pipeline commands accept ``--store DIR`` (default: the
``REPRO_STORE`` environment variable): a content-addressed artifact
store that memoizes every expensive stage across invocations, so a
warm rerun is O(read).  All store diagnostics go to stderr; stdout is
bitwise identical between cold and warm runs.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys

from repro import AnalyzerConfig, FaultCriticalityAnalyzer, build_design
from repro.netlist import summarize, to_verilog
from repro.reporting import bar_chart, render_table

DESIGN_CHOICES = ("sdram", "or1200_if", "or1200_icfsm", "uart")


def _parse_shard_size(text: str):
    """``--shard-size`` values: a fault count, or ``auto``."""
    if text == "auto":
        return None
    return int(text)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("design", choices=DESIGN_CHOICES)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workloads", type=int, default=16,
                        help="number of workloads in the FI suite")
    parser.add_argument("--cycles", type=int, default=200,
                        help="cycles per workload")


def _add_pool_flags(parser: argparse.ArgumentParser) -> None:
    """Worker-pool supervision knobs (meaningful with --jobs > 1)."""
    parser.add_argument("--max-worker-restarts", type=int, default=8,
                        metavar="N",
                        help="dead pool workers respawned over the "
                             "whole run before the pool is allowed to "
                             "shrink (default: 8)")
    parser.add_argument("--heartbeat-interval", type=float, default=5.0,
                        metavar="SECONDS",
                        help="seconds between worker liveness stamps; "
                             "a worker silent for several intervals "
                             "is presumed wedged and replaced "
                             "(default: 5.0)")


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", metavar="DIR",
                        default=os.environ.get("REPRO_STORE"),
                        help="content-addressed artifact store: reuse "
                             "cached stage results and cache fresh "
                             "ones (default: $REPRO_STORE)")
    parser.add_argument("--no-store", action="store_true",
                        help="ignore --store / $REPRO_STORE and run "
                             "every stage cold")


def _open_store(args):
    """The run's ArtifactStore, or ``None`` when disabled/unset."""
    if getattr(args, "no_store", False) or not getattr(
            args, "store", None):
        return None
    from repro.store import ArtifactStore

    return ArtifactStore(args.store)


def _make_analyzer(args) -> FaultCriticalityAnalyzer:
    config = AnalyzerConfig(
        seed=args.seed, n_workloads=args.workloads,
        workload_cycles=args.cycles,
    )
    return FaultCriticalityAnalyzer(build_design(args.design), config,
                                    store=_open_store(args))


def cmd_designs(_args) -> int:
    rows = [
        summarize(build_design(name)).as_dict()
        for name in DESIGN_CHOICES
    ]
    print(render_table(rows, title="Built-in evaluation designs"))
    return 0


def _print_eco_header(eco) -> None:
    """Shared ``--eco`` preamble: what changed, what stayed clean."""
    print(f"ECO diff: {eco.diff.summary()}")
    print(f"dirty region: {eco.region.summary()}")
    print(f"fault reuse: {eco.n_reused}/{eco.n_faults} cached rows "
          f"merged, {eco.n_dirty} re-simulated "
          f"in {eco.dirty_seconds:.2f}s "
          f"(baseline campaign took {eco.base_seconds:.2f}s)")


def cmd_analyze(args) -> int:
    analyzer = _make_analyzer(args)
    if args.eco:
        from repro.netlist import read_verilog
        from repro.utils.errors import EcoError

        edited = read_verilog(args.eco)
        try:
            update = analyzer.eco_update(
                edited, base_checkpoint_dir=args.base_checkpoint_dir,
                jobs=args.jobs,
            )
        except EcoError as error:
            print(f"error: cannot reuse baseline incrementally: "
                  f"{error}", file=sys.stderr)
            return 2
        _print_eco_header(update.eco)
        print()
        print(render_table([update.summary()],
                           title="Incremental (ECO) update"))
        return 0
    print(render_table([analyzer.summary()], title="Analysis summary"))
    accuracies = {"GCN": analyzer.validation_accuracy()}
    accuracies.update(analyzer.baseline_accuracies())
    print()
    print(bar_chart(accuracies,
                    title="Validation accuracy (GCN vs baselines)"))
    quality = analyzer.regression_quality()
    print("\nCriticality-score regression:")
    for key, value in quality.items():
        print(f"  {key}: {value:.3f}")
    if args.explain_sample:
        nodes = analyzer.sample_explain_nodes(
            per_class=args.explain_sample
        )
        print(f"\nGNNExplainer sample ({len(nodes)} held-out nodes, "
              "both predicted classes):")
        for report in analyzer.node_report(
                nodes, jobs=args.jobs,
                max_worker_restarts=args.max_worker_restarts,
                heartbeat_interval=args.heartbeat_interval):
            print(render_table([report.as_row()],
                               title=f"Node {report.node_name}"))
    if args.save_campaign:
        from repro.io import save_campaign

        save_campaign(analyzer.campaign, args.save_campaign)
        print(f"\ncampaign written to {args.save_campaign}")
    return 0


def cmd_campaign(args) -> int:
    from repro.fi import dataset_from_campaign, format_report, run_campaign
    from repro.sim import design_workloads

    design = build_design(args.design)
    workloads = design_workloads(design.name, design,
                                 count=args.workloads,
                                 cycles=args.cycles, seed=args.seed)
    if args.eco:
        from repro.fi import run_eco_campaign
        from repro.netlist import read_verilog
        from repro.utils.errors import EcoError

        if not args.base_checkpoint_dir:
            print("error: --eco needs --base-checkpoint-dir (the "
                  "checkpointed baseline campaign to merge from)",
                  file=sys.stderr)
            return 2
        edited = read_verilog(args.eco)
        try:
            eco = run_eco_campaign(
                design, edited, workloads,
                base_checkpoint_dir=args.base_checkpoint_dir,
                collapse=args.collapse,
                timeout=args.timeout, retries=args.retries,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                jobs=args.jobs, shard_size=args.shard_size,
                max_worker_restarts=args.max_worker_restarts,
                heartbeat_interval=args.heartbeat_interval,
            )
        except EcoError as error:
            print(f"error: cannot reuse baseline incrementally: "
                  f"{error}", file=sys.stderr)
            return 2
        _print_eco_header(eco)
        print()
        campaign = eco.result
    elif args.eco_traces:
        from repro.fi import run_campaign_with_traces

        if not args.checkpoint_dir:
            print("error: --eco-traces needs --checkpoint-dir (the "
                  "sidecar is written into the checkpoint store)",
                  file=sys.stderr)
            return 2
        campaign, _ = run_campaign_with_traces(
            design, workloads, checkpoint_dir=args.checkpoint_dir,
        )
        print(f"ECO trace sidecar -> {args.checkpoint_dir}/"
              "eco_traces.npz (later: repro campaign --eco EDITED.v "
              f"--base-checkpoint-dir {args.checkpoint_dir} "
              f"{args.design})")
        print()
    else:
        def compute():
            return run_campaign(
                design, workloads, collapse=args.collapse,
                timeout=args.timeout, retries=args.retries,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                jobs=args.jobs, shard_size=args.shard_size,
                max_worker_restarts=args.max_worker_restarts,
                heartbeat_interval=args.heartbeat_interval,
            )

        store = _open_store(args)
        if store is not None and not args.checkpoint_dir:
            from repro.store import memoized_campaign

            campaign = memoized_campaign(
                store, design, workloads, collapse=args.collapse,
                compute=compute,
            )
        else:
            # A checkpoint-dir run must actually execute (its durable
            # per-unit store is the product); don't shortcut it.
            campaign = compute()
    experiments = len(campaign.faults) * campaign.n_workloads
    print(f"{experiments} fault-experiments in "
          f"{campaign.simulation_seconds:.1f}s")
    if campaign.failures:
        print(f"\nWARNING: {len(campaign.failures)} of "
              f"{campaign.n_workloads} workloads never completed "
              "(partial results):")
        for failure in campaign.failures:
            print(f"  {failure.workload}: {failure.status} after "
                  f"{failure.attempts} attempt(s) — {failure.error}")
    print()
    print(format_report(
        campaign.workload_report(campaign.workload_names[0]), limit=8
    ))
    dataset = dataset_from_campaign(campaign)
    print(f"\nAlgorithm 1: {dataset.n_nodes} nodes, "
          f"{dataset.critical_fraction:.1%} Critical at threshold "
          f"{dataset.threshold}")
    if args.out:
        from repro.io import save_campaign

        save_campaign(campaign, args.out)
        print(f"campaign written to {args.out}")
    return 0 if not campaign.failures else 2


def cmd_explain(args) -> int:
    analyzer = _make_analyzer(args)
    nodes = list(args.nodes)
    if not nodes:
        indices = analyzer.sample_explain_nodes()
        nodes = [analyzer.data.node_names[i] for i in indices]
    if args.batch_size is not None and args.batch_size < 1:
        print(f"error: --batch-size {args.batch_size} must be >= 1",
              file=sys.stderr)
        return 2
    if args.batch_size is not None:
        analyzer.explainer.batch_size = args.batch_size
    reports = analyzer.node_report(
        nodes, jobs=args.jobs,
        max_worker_restarts=args.max_worker_restarts,
        heartbeat_interval=args.heartbeat_interval,
    )
    for report in reports:
        print(render_table([report.as_row()],
                           title=f"Node {report.node_name}"))
    return 0


def cmd_reset_check(args) -> int:
    from repro.sim import reset_analysis

    design = build_design(args.design)
    idle = {"rxd": 1} if args.design == "uart" else None
    report = reset_analysis(design, settle_cycles=args.settle,
                            idle_inputs=idle)
    print(f"{design.name}: resettable={report.resettable}")
    control = [name for name in report.unknown_flops
               if not name.startswith("DFFE")]
    print(f"  unknown control flops: {len(control)}")
    print(f"  unknown data registers (enable-only): "
          f"{len(report.unknown_flops) - len(control)}")
    if report.unknown_outputs:
        print(f"  outputs unknown until first use: "
              f"{', '.join(report.unknown_outputs[:8])}"
              + (" ..." if len(report.unknown_outputs) > 8 else ""))
    return 0 if not control else 1


def cmd_optimize(args) -> int:
    from repro.netlist import check_equivalence
    from repro.netlist.optimize import optimize_netlist

    design = build_design(args.design)
    optimized, report = optimize_netlist(design)
    print(f"{design.name}: {report.gates_before} -> "
          f"{report.gates_after} gates "
          f"({report.gates_removed} removed)")
    if report.folded_constants:
        print(f"  folded constants: "
              f"{', '.join(report.folded_constants[:6])}")
    if report.removed_dead:
        print(f"  dead gates: {', '.join(report.removed_dead[:6])}"
              + (" ..." if len(report.removed_dead) > 6 else ""))
    result = check_equivalence(design, optimized, workloads=3,
                               cycles=60)
    print(f"  equivalence check: "
          f"{'PASS' if result.equivalent else 'FAIL'}")
    if args.out:
        from repro.netlist import write_verilog

        write_verilog(optimized, args.out)
        print(f"  optimized netlist -> {args.out}")
    return 0 if result.equivalent else 1


def cmd_harden(args) -> int:
    import numpy as np

    from repro.fi import dataset_from_campaign, run_campaign
    from repro.netlist.transform import harden_nodes

    analyzer = _make_analyzer(args)
    baseline = analyzer.dataset
    predicted = analyzer.regressor.predict()
    chosen = [
        baseline.node_names[i]
        for i in np.argsort(-predicted)[:args.budget]
    ]
    print(f"Hardening {len(chosen)} GCN-selected nodes: "
          f"{', '.join(chosen[:6])} ...")
    protected = harden_nodes(analyzer.netlist, chosen)
    campaign = run_campaign(protected, analyzer.workloads)
    after = dataset_from_campaign(campaign)
    mission = [
        score for name, score in zip(after.node_names, after.scores)
        if "tmr_" not in name or name.endswith(("_r1", "_r2"))
    ]
    before_probability = float(baseline.scores.mean())
    after_probability = float(np.sum(mission) / baseline.n_nodes)
    print(f"mission failure probability: {before_probability:.4f} -> "
          f"{after_probability:.4f}")
    if args.out:
        from repro.netlist import write_verilog

        write_verilog(protected, args.out)
        print(f"hardened netlist -> {args.out}")
    return 0


def cmd_gridsearch(args) -> int:
    analyzer = _make_analyzer(args)
    result = analyzer.grid_search(
        epochs=args.epochs, jobs=args.jobs, fast_math=args.fast_math,
        max_worker_restarts=args.max_worker_restarts,
        heartbeat_interval=args.heartbeat_interval,
    )
    print(render_table(
        result.table(),
        title=f"Grid search: {analyzer.netlist.name} "
              f"({len(result.points)} candidates)",
    ))
    best = result.best
    print(f"\nbest: {best.describe()}  "
          f"val accuracy {best.val_accuracy:.4f} "
          f"(best epoch {best.best_epoch})")
    return 0


def cmd_store(args) -> int:
    from repro.store import ArtifactStore

    directory = args.store or os.environ.get("REPRO_STORE")
    if not directory:
        print("error: no store directory — pass --store DIR or set "
              "$REPRO_STORE", file=sys.stderr)
        return 2
    store = ArtifactStore(directory, byte_budget=args.budget)
    if args.action == "stats":
        stats = store.stats()
        by_kind = stats.pop("by_kind")
        rows = [stats]
        print(render_table(rows, title="Artifact store"))
        if by_kind:
            print()
            print(render_table(
                [by_kind], title="Entries by kind"
            ))
    elif args.action == "ls":
        rows = [
            {"key": entry["key"][:16], "kind": entry["kind"],
             "bytes": entry["size"],
             "design": entry["meta"].get("design", "")}
            for entry in store.entries()
        ]
        if rows:
            print(render_table(rows, title="Store entries (LRU last)"))
        else:
            print("store is empty")
    elif args.action == "gc":
        evicted, freed = store.gc()
        print(f"evicted {evicted} entries ({freed} bytes); "
              f"{store.stats()['bytes']} bytes in use of "
              f"{store.byte_budget} budget")
    elif args.action == "clear":
        count = store.clear()
        print(f"removed {count} entries")
    return 0


def cmd_verilog(args) -> int:
    design = build_design(args.design)
    text = to_verilog(design)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text, encoding="utf-8")
        print(f"{design.name}: {len(text.splitlines())} lines -> "
              f"{args.out}")
    else:
        print(text, end="")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Graph learning-based fault criticality analysis "
                    "(DAC 2024 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("designs", help="list built-in designs")

    analyze = commands.add_parser("analyze", help="full pipeline")
    _add_common(analyze)
    analyze.add_argument("--save-campaign", metavar="FILE.npz",
                         help="persist the FI campaign result")
    analyze.add_argument("--explain-sample", type=int, default=0,
                         metavar="N",
                         help="also explain a deterministic sample of "
                              "up to N Critical and N Non-critical "
                              "held-out nodes (0 = skip)")
    analyze.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for the explainer "
                              "fan-out (0 = all cores; results are "
                              "identical to --jobs 1)")
    analyze.add_argument("--eco", metavar="EDITED.v",
                         help="incremental re-analysis: diff the "
                              "design against this edited netlist, "
                              "re-simulate only the dirty region, and "
                              "rebind the trained GCNs to the edited "
                              "graph (no retraining)")
    analyze.add_argument("--base-checkpoint-dir", metavar="DIR",
                         help="with --eco: merge cached fault rows "
                              "from this checkpointed baseline "
                              "campaign instead of simulating the "
                              "baseline in-memory")
    _add_store_flags(analyze)
    _add_pool_flags(analyze)

    campaign = commands.add_parser("campaign", help="FI campaign only")
    _add_common(campaign)
    campaign.add_argument("--collapse", action="store_true",
                          help="collapse equivalent faults")
    campaign.add_argument("--out", metavar="FILE.npz",
                          help="persist the campaign result")
    campaign.add_argument("--checkpoint-dir", metavar="DIR",
                          help="durably checkpoint each completed "
                               "workload to DIR")
    campaign.add_argument("--resume", action="store_true",
                          help="resume from completed workloads in "
                               "--checkpoint-dir")
    campaign.add_argument("--timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="abandon a fault pass that runs longer "
                               "than this")
    campaign.add_argument("--retries", type=int, default=0,
                          metavar="N",
                          help="retries per workload after a failed or "
                               "hung pass (exhaustion lands in the "
                               "failure ledger)")
    campaign.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="worker processes for (workload x "
                               "shard) units (0 = all cores; results "
                               "are bitwise identical to --jobs 1)")
    campaign.add_argument("--shard-size", type=_parse_shard_size,
                          default=0, metavar="N|auto",
                          help="faults simulated per shard (0 = whole "
                               "universe per pass, auto = sized so "
                               "each shard's value matrix fits in "
                               "cache)")
    campaign.add_argument("--eco", metavar="EDITED.v",
                          help="incremental mode: diff the design "
                               "against this edited netlist, "
                               "re-simulate only faults in the dirty "
                               "region, and merge the rest from "
                               "--base-checkpoint-dir; the merged "
                               "result is bitwise identical to a full "
                               "rerun")
    campaign.add_argument("--base-checkpoint-dir", metavar="DIR",
                          help="with --eco: the completed baseline "
                               "campaign's checkpoint store "
                               "(fingerprint-verified; incompatible "
                               "stores are refused, never merged)")
    campaign.add_argument("--eco-traces", action="store_true",
                          help="baseline prep: serial campaign that "
                               "also records the eco_traces.npz "
                               "sidecar into --checkpoint-dir, "
                               "unlocking --eco's trace-merge fast "
                               "path")
    _add_store_flags(campaign)
    _add_pool_flags(campaign)

    explain = commands.add_parser("explain",
                                  help="per-node explanations")
    _add_common(explain)
    explain.add_argument("nodes", nargs="*", metavar="NODE",
                         help="node names (default: a deterministic "
                              "sample of held-out nodes covering both "
                              "predicted classes)")
    explain.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for explanation "
                              "batches (0 = all cores; results are "
                              "bitwise identical to --jobs 1)")
    explain.add_argument("--batch-size", type=int, default=None,
                         metavar="K",
                         help="nodes per block-diagonal optimization "
                              "batch (default: explainer's built-in; "
                              "results are identical for any K)")
    _add_store_flags(explain)
    _add_pool_flags(explain)

    grid = commands.add_parser(
        "gridsearch", help="hyperparameter grid search (§3.3.2)"
    )
    _add_common(grid)
    grid.add_argument("--epochs", type=int, default=200, metavar="N",
                      help="training epochs per grid candidate "
                           "(default: 200, patience 40)")
    grid.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="pool workers training candidates in "
                           "parallel (0 = all cores; the ranking is "
                           "bitwise identical to --jobs 1)")
    grid.add_argument("--fast-math", action="store_true",
                      help="reordered sparse kernels + shared "
                           "first-layer propagation cache "
                           "(faster, algebraically exact, but not "
                           "bitwise identical to the default)")
    _add_store_flags(grid)
    _add_pool_flags(grid)

    store = commands.add_parser(
        "store", help="artifact-store maintenance"
    )
    store.add_argument("action",
                       choices=("stats", "ls", "gc", "clear"))
    store.add_argument("--store", metavar="DIR",
                       default=os.environ.get("REPRO_STORE"),
                       help="store directory (default: $REPRO_STORE)")
    store.add_argument("--budget", type=int, default=None,
                       metavar="BYTES",
                       help="set the store's persistent byte budget "
                            "(gc evicts LRU entries beyond it)")

    verilog = commands.add_parser("verilog",
                                  help="export structural Verilog")
    verilog.add_argument("design", choices=DESIGN_CHOICES)
    verilog.add_argument("--out", metavar="FILE.v")

    reset_check = commands.add_parser(
        "reset-check", help="3-valued reset verification"
    )
    reset_check.add_argument("design", choices=DESIGN_CHOICES)
    reset_check.add_argument("--settle", type=int, default=6)

    optimize = commands.add_parser(
        "optimize", help="constant folding + dead-code elimination"
    )
    optimize.add_argument("design", choices=DESIGN_CHOICES)
    optimize.add_argument("--out", metavar="FILE.v")

    harden = commands.add_parser(
        "harden", help="GCN-guided selective TMR"
    )
    _add_common(harden)
    harden.add_argument("--budget", type=int, default=16,
                        help="number of nodes to harden")
    harden.add_argument("--out", metavar="FILE.v")

    args = parser.parse_args(argv)
    handler = {
        "designs": cmd_designs,
        "analyze": cmd_analyze,
        "campaign": cmd_campaign,
        "explain": cmd_explain,
        "gridsearch": cmd_gridsearch,
        "store": cmd_store,
        "verilog": cmd_verilog,
        "reset-check": cmd_reset_check,
        "optimize": cmd_optimize,
        "harden": cmd_harden,
    }[args.command]
    _install_termination_handler()
    try:
        return handler(args)
    except KeyboardInterrupt:
        # The pool tears down (and the checkpoint store flushes) in the
        # runner's finally blocks before the exception reaches here, so
        # every completed unit is already durable on disk.
        print(
            "\ninterrupted — completed units are checkpointed; rerun "
            "with --checkpoint-dir DIR --resume to continue",
            file=sys.stderr,
        )
        return 130


def _install_termination_handler() -> None:
    """Route SIGTERM through the KeyboardInterrupt path so operators'
    ``kill`` and ^C both produce a graceful, resumable shutdown."""

    def _terminate(_signum, _frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass


if __name__ == "__main__":
    sys.exit(main())
