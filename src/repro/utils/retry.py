"""Bounded retry with jittered exponential backoff.

The fault-injection campaign runner supervises each workload pass with
this policy; it is deliberately free of any FI-specific vocabulary so
other long-running stages (training sweeps, batch export) can reuse it.

Determinism matters here as much as in the simulators: the jitter is
drawn from a seeded generator, so a retry schedule is reproducible, and
both the clock and the sleep function are injectable so tests can run
the whole policy against a fake clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, TypeVar

import numpy as np

from repro.utils.errors import SimulationError

T = TypeVar("T")


@dataclass(frozen=True)
class BackoffPolicy:
    """Jittered exponential backoff schedule.

    Attempt ``k`` (0-based) sleeps ``base * multiplier**k`` seconds,
    capped at ``max_delay``, then scaled by a uniform jitter factor in
    ``[1 - jitter, 1 + jitter]`` to decorrelate concurrent retriers.
    """

    base: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0 or self.max_delay < 0:
            raise SimulationError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise SimulationError(
                f"backoff multiplier {self.multiplier} must be >= 1"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise SimulationError(
                f"backoff jitter {self.jitter} outside [0, 1)"
            )

    def delays(self, attempts: int) -> List[float]:
        """The full sleep schedule for ``attempts`` retries."""
        rng = np.random.default_rng(self.seed)
        out = []
        for attempt in range(attempts):
            delay = min(self.base * self.multiplier ** attempt,
                        self.max_delay)
            if self.jitter:
                delay *= 1.0 + self.jitter * float(
                    rng.uniform(-1.0, 1.0)
                )
            out.append(delay)
        return out


@dataclass
class RetryOutcome:
    """What a supervised call actually did, for the failure ledger."""

    attempts: int
    elapsed_seconds: float
    error: Optional[BaseException] = None

    @property
    def succeeded(self) -> bool:
        return self.error is None


def retry_call(
    fn: Callable[[], T],
    retries: int = 0,
    backoff: Optional[BackoffPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.perf_counter,
) -> Tuple[Optional[T], RetryOutcome]:
    """Call ``fn`` with up to ``retries`` retries.

    Returns ``(value, outcome)``.  On exhaustion the value is ``None``
    and ``outcome.error`` carries the *last* exception — the caller
    decides whether exhaustion is fatal (the campaign runner records it
    in the ledger and moves on).  ``KeyboardInterrupt``/``SystemExit``
    always propagate: a kill must stay a kill, or checkpoint/resume
    semantics break.
    """
    if retries < 0:
        raise SimulationError(f"retries {retries} must be >= 0")
    schedule = (backoff or BackoffPolicy()).delays(retries)
    started = clock()
    last_error: Optional[BaseException] = None
    for attempt in range(retries + 1):
        try:
            value = fn()
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as error:  # noqa: BLE001 — supervised unit
            last_error = error
            if attempt < retries:
                sleep(schedule[attempt])
            continue
        return value, RetryOutcome(
            attempts=attempt + 1,
            elapsed_seconds=clock() - started,
        )
    return None, RetryOutcome(
        attempts=retries + 1,
        elapsed_seconds=clock() - started,
        error=last_error,
    )
