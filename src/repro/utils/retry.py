"""Bounded retry with jittered exponential backoff.

The fault-injection campaign runner supervises each workload pass with
this policy; it is deliberately free of any FI-specific vocabulary so
other long-running stages (training sweeps, batch export) can reuse it.

Determinism matters here as much as in the simulators: the jitter is
drawn from a seeded generator, so a retry schedule is reproducible, and
both the clock and the sleep function are injectable so tests can run
the whole policy against a fake clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, TypeVar

import numpy as np

from repro.utils.errors import SimulationError

T = TypeVar("T")


@dataclass(frozen=True)
class BackoffPolicy:
    """Jittered exponential backoff schedule.

    Attempt ``k`` (0-based) sleeps ``base * multiplier**k`` seconds,
    capped at ``max_delay``, then scaled by a uniform jitter factor in
    ``[1 - jitter, 1 + jitter]`` to decorrelate concurrent retriers.

    ``max_elapsed`` is a total wall-clock deadline for the whole
    supervised call (attempts *and* sleeps): without it, a poison unit
    under ``timeout x retries`` can burn ``(retries + 1) * timeout``
    plus the full backoff schedule.  Once the budget is spent — or the
    next scheduled sleep would overrun it — :func:`retry_call` stops
    retrying and reports exhaustion, even with retries remaining.
    """

    base: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    seed: int = 0
    max_elapsed: Optional[float] = None

    def __post_init__(self) -> None:
        if self.base < 0 or self.max_delay < 0:
            raise SimulationError("backoff delays must be non-negative")
        if self.max_elapsed is not None and self.max_elapsed <= 0:
            raise SimulationError(
                f"backoff max_elapsed {self.max_elapsed} must be "
                "positive"
            )
        if self.multiplier < 1.0:
            raise SimulationError(
                f"backoff multiplier {self.multiplier} must be >= 1"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise SimulationError(
                f"backoff jitter {self.jitter} outside [0, 1)"
            )

    def delays(self, attempts: int) -> List[float]:
        """The full sleep schedule for ``attempts`` retries."""
        rng = np.random.default_rng(self.seed)
        out = []
        for attempt in range(attempts):
            delay = min(self.base * self.multiplier ** attempt,
                        self.max_delay)
            if self.jitter:
                delay *= 1.0 + self.jitter * float(
                    rng.uniform(-1.0, 1.0)
                )
            out.append(delay)
        return out


@dataclass
class RetryOutcome:
    """What a supervised call actually did, for the failure ledger."""

    attempts: int
    elapsed_seconds: float
    error: Optional[BaseException] = None

    @property
    def succeeded(self) -> bool:
        return self.error is None


def retry_call(
    fn: Callable[[], T],
    retries: int = 0,
    backoff: Optional[BackoffPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.perf_counter,
) -> Tuple[Optional[T], RetryOutcome]:
    """Call ``fn`` with up to ``retries`` retries.

    Returns ``(value, outcome)``.  On exhaustion the value is ``None``
    and ``outcome.error`` carries the *last* exception — the caller
    decides whether exhaustion is fatal (the campaign runner records it
    in the ledger and moves on).  Exhaustion happens when the retries
    run out *or* when ``backoff.max_elapsed`` would be overrun by the
    next sleep — timeout x retries on a hopeless unit stays inside a
    bounded wall-clock budget.  ``KeyboardInterrupt``/``SystemExit``
    always propagate: a kill must stay a kill, or checkpoint/resume
    semantics break.
    """
    if retries < 0:
        raise SimulationError(f"retries {retries} must be >= 0")
    policy = backoff or BackoffPolicy()
    schedule = policy.delays(retries)
    deadline = policy.max_elapsed
    started = clock()
    last_error: Optional[BaseException] = None
    attempts = 0
    for attempt in range(retries + 1):
        attempts = attempt + 1
        try:
            value = fn()
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as error:  # noqa: BLE001 — supervised unit
            last_error = error
            if attempt < retries:
                elapsed = clock() - started
                if deadline is not None and (
                    elapsed + schedule[attempt] >= deadline
                ):
                    break
                sleep(schedule[attempt])
            continue
        return value, RetryOutcome(
            attempts=attempts,
            elapsed_seconds=clock() - started,
        )
    return None, RetryOutcome(
        attempts=attempts,
        elapsed_seconds=clock() - started,
        error=last_error,
    )
