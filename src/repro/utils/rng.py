"""Deterministic random-number-generator plumbing.

All stochastic components in the library (workload generation, model
initialization, dropout, data splits) draw from
:class:`numpy.random.Generator` instances derived here, so an experiment
is fully reproducible from a single integer seed.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

import numpy as np

SeedLike = Union[int, tuple, np.random.Generator, None]


def rng_from_seed(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, or an existing
    generator (returned unchanged so callers can thread one RNG through).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, tuple):
        return derive_rng(None, *[str(part) for part in seed])
    return np.random.default_rng(seed)


def derive_rng(seed: SeedLike, *labels: str) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and string labels.

    Two call sites using different labels get statistically independent
    streams even when sharing the root seed, which keeps e.g. workload
    randomness stable when model-initialization randomness changes.
    """
    if isinstance(seed, np.random.Generator):
        # Child streams from a live generator: spawn via its bit generator.
        return np.random.default_rng(seed.integers(0, 2**63 - 1))
    if isinstance(seed, tuple):
        root = "-".join(str(part) for part in seed)
    else:
        root = "0" if seed is None else str(int(seed))
    digest = hashlib.sha256(
        ("|".join([root, *labels])).encode("utf-8")
    ).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


class SeedSequence:
    """Hands out labeled child RNGs derived from one root seed.

    >>> seeds = SeedSequence(42)
    >>> rng_a = seeds.child("workloads")
    >>> rng_b = seeds.child("model-init")
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)

    def child(self, *labels: str) -> np.random.Generator:
        """Return a generator derived from the root seed and ``labels``."""
        return derive_rng(self.root_seed, *labels)

    def children(self, label: str, count: int) -> Iterable[np.random.Generator]:
        """Yield ``count`` independent generators labeled ``label[i]``."""
        for index in range(count):
            yield self.child(label, str(index))
