"""The repo's single artifact-identity scheme.

Every durable artifact — campaign checkpoints, ECO trace sidecars, and
the content-addressed :mod:`repro.store` entries — is identified by a
sha256 fingerprint of its *full input closure*: a canonical-JSON header
describing every parameter that shapes the artifact's bytes, plus the
raw bytes of any referenced arrays.  :func:`canonical_hash` is the one
primitive; the domain helpers here compose it into the identities the
pipeline uses, so two subsystems can never disagree about whether two
artifacts were produced from the same inputs.

Canonicalization rules:

* Headers are hashed as ``json.dumps(..., sort_keys=True)`` — key
  order never matters, and every value must be JSON-serializable
  (numbers, strings, booleans, lists, dicts, ``None``).
* Arrays are hashed as their C-contiguous raw bytes, in argument
  order, after the header — identical values with different memory
  layouts fingerprint identically.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Optional, Sequence

import numpy as np


def canonical_hash(header: object,
                   arrays: Iterable[np.ndarray] = ()) -> str:
    """Sha256 hex digest of a canonical-JSON header plus array bytes."""
    digest = hashlib.sha256()
    digest.update(json.dumps(header, sort_keys=True).encode("utf-8"))
    for array in arrays:
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def campaign_fingerprint(
    netlist_name: str,
    workloads: Sequence,
    faults: Sequence,
    severity: float,
    collapse: bool,
    observation_key: str,
) -> str:
    """Deterministic digest of everything that shapes campaign output.

    Workloads hash their stimulus *bytes*, not just their names: two
    suites generated with different seeds share names but produce
    different ground truth, and resuming across them must be refused.
    """
    header = {
        "netlist": netlist_name,
        "severity": float(severity),
        "collapse": bool(collapse),
        "observation": observation_key,
        "faults": [
            (fault.node_name, int(fault.gate_index),
             int(fault.net_index),
             int(getattr(fault, "stuck_at", -1)),
             int(getattr(fault, "cycle", -1)))
            for fault in faults
        ],
        "workloads": [
            (workload.name, workload.cycles) for workload in workloads
        ],
    }
    return canonical_hash(
        header, (workload.vectors for workload in workloads)
    )


def netlist_fingerprint(netlist) -> str:
    """Structural identity of a gate-level design.

    Hashes the full name-level description — design name, primary
    inputs, primary outputs, and every gate's (cell, instance, input
    net names, output net name) in gate order — so any edit that could
    change behaviour (or the fault universe) changes the digest, while
    re-parsing the same design always reproduces it.
    """
    nets = netlist.nets
    header = {
        "name": netlist.name,
        "inputs": netlist.input_names(),
        "outputs": [
            [nets[net].name, port]
            for net, port in netlist.primary_outputs
        ],
        "gates": [
            [gate.cell.name, gate.instance,
             [nets[net].name for net in gate.inputs],
             nets[gate.output].name]
            for gate in netlist.gates
        ],
    }
    return canonical_hash(header)


def workloads_fingerprint(workloads: Sequence) -> str:
    """Identity of a stimulus suite: names, shapes, and vector bytes."""
    header = {
        "workloads": [
            [workload.name, workload.cycles, list(workload.input_names)]
            for workload in workloads
        ],
    }
    return canonical_hash(
        header, (workload.vectors for workload in workloads)
    )
