"""Shared utilities: seeded RNG helpers, timing, retry/backoff, and
error types."""

from repro.utils.rng import SeedSequence, derive_rng, rng_from_seed
from repro.utils.timing import Stopwatch
from repro.utils.retry import BackoffPolicy, RetryOutcome, retry_call
from repro.utils.parallel import (
    auto_shard_size,
    fork_context,
    resolve_jobs,
    shard_bounds,
)
from repro.utils.errors import (
    CampaignError,
    ModelError,
    NetlistError,
    ReproError,
    SerializationError,
    SimulationError,
)

__all__ = [
    "SeedSequence",
    "derive_rng",
    "rng_from_seed",
    "Stopwatch",
    "BackoffPolicy",
    "RetryOutcome",
    "retry_call",
    "auto_shard_size",
    "fork_context",
    "resolve_jobs",
    "shard_bounds",
    "ReproError",
    "NetlistError",
    "SimulationError",
    "ModelError",
    "CampaignError",
    "SerializationError",
]
