"""Shared utilities: seeded RNG helpers, timing, and error types."""

from repro.utils.rng import SeedSequence, derive_rng, rng_from_seed
from repro.utils.timing import Stopwatch
from repro.utils.errors import ReproError, NetlistError, SimulationError, ModelError

__all__ = [
    "SeedSequence",
    "derive_rng",
    "rng_from_seed",
    "Stopwatch",
    "ReproError",
    "NetlistError",
    "SimulationError",
    "ModelError",
]
