"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers embedding the framework can catch one base type.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NetlistError(ReproError):
    """Raised for malformed netlists: unknown cells, dangling nets,
    multiple drivers, combinational loops, or bad port arity."""


class SimulationError(ReproError):
    """Raised for invalid simulation requests: stimulus/port mismatches,
    unknown probe names, or empty workloads."""


class ModelError(ReproError):
    """Raised for model misuse: predicting before fitting, shape
    mismatches between features and weights, or invalid hyperparameters."""


class CampaignError(SimulationError):
    """Raised for campaign-harness failures: corrupt or mismatched
    checkpoints, resume against a different campaign configuration, or
    invalid runner policies.  Distinct from faults *injected into* the
    DUT — this is the harness itself misbehaving."""


class EcoError(CampaignError):
    """Raised when incremental (ECO) re-analysis cannot soundly reuse
    the cached baseline: incompatible primary-input interfaces,
    fingerprint/universe mismatches against the base campaign, an
    incomplete or failed base, or divergent observation policies.
    Callers should fall back to a full campaign on the edited design —
    silently merging across any of these boundaries would corrupt the
    ground truth."""


class WorkerCrashError(CampaignError):
    """A fan-out worker process died (segfault, OOM kill) instead of
    returning its unit.

    Carries the identity of the unit whose worker died
    (``unit_index``) and the results harvested from units that *did*
    complete before the failure (``completed``, mapping unit index to
    result) — a crash must never silently discard finished siblings.
    """

    def __init__(self, message: str, *,
                 unit_index: "int | None" = None,
                 completed: "dict | None" = None) -> None:
        super().__init__(message)
        self.unit_index = unit_index
        self.completed = dict(completed or {})


class SerializationError(ReproError):
    """Raised when a persisted artifact (campaign archive, dataset,
    checkpoint) is corrupt, truncated, or internally inconsistent."""


class CorruptArtifactError(SerializationError):
    """The artifact's *bytes* are damaged: unreadable archive, missing
    arrays/metadata, or inconsistent shapes — the torn-write signature
    of a killed writer.  Distinct from a well-formed artifact that
    belongs to a different configuration (fingerprint/version
    mismatch), which stays a plain :class:`SerializationError`: torn
    units can safely be re-simulated, mismatched ones must be refused."""
