"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers embedding the framework can catch one base type.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NetlistError(ReproError):
    """Raised for malformed netlists: unknown cells, dangling nets,
    multiple drivers, combinational loops, or bad port arity."""


class SimulationError(ReproError):
    """Raised for invalid simulation requests: stimulus/port mismatches,
    unknown probe names, or empty workloads."""


class ModelError(ReproError):
    """Raised for model misuse: predicting before fitting, shape
    mismatches between features and weights, or invalid hyperparameters."""
