"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers embedding the framework can catch one base type.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NetlistError(ReproError):
    """Raised for malformed netlists: unknown cells, dangling nets,
    multiple drivers, combinational loops, or bad port arity."""


class SimulationError(ReproError):
    """Raised for invalid simulation requests: stimulus/port mismatches,
    unknown probe names, or empty workloads."""


class ModelError(ReproError):
    """Raised for model misuse: predicting before fitting, shape
    mismatches between features and weights, or invalid hyperparameters."""


class CampaignError(SimulationError):
    """Raised for campaign-harness failures: corrupt or mismatched
    checkpoints, resume against a different campaign configuration, or
    invalid runner policies.  Distinct from faults *injected into* the
    DUT — this is the harness itself misbehaving."""


class SerializationError(ReproError):
    """Raised when a persisted artifact (campaign archive, dataset,
    checkpoint) is corrupt, truncated, or internally inconsistent."""
