"""Small wall-clock stopwatch used by the cost-comparison benchmarks."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating stopwatch.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     pass  # timed work
    >>> watch.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started_at = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._started_at is not None
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._started_at = None
