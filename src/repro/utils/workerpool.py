"""Supervised persistent fork worker pool for campaign/explainer fan-out.

``ProcessPoolExecutor`` cost this project its parallel speedup twice
over (``BENCH_campaign.json``/``BENCH_explain.json`` committed 0.85x /
0.86x): per-call pools re-fork for every map, pay the executor's
management threads and queue pickling per unit, and — worse for a
multi-hour FI campaign — a single worker death surfaces as a bare
``BrokenProcessPool`` that discards every completed-but-unreturned
unit.  This module replaces that fan-out with a pool built for the
campaign's economics (the FI ground truth is ~35x the cost of GCN
inference, so in-flight work is precious):

* **Fork at setup** — workers fork once per pool, after the caller has
  finished building the read-only campaign/explainer state (netlists,
  stimulus, adjacency, trained weights, simulation engines).  Children
  inherit everything through copy-on-write pages: nothing is pickled
  on the way in, and a unit message is just ``(index, unit)``.
* **Dynamic dispatch (work stealing)** — the supervisor holds the unit
  queue and hands each worker its next unit the moment the previous
  one is acknowledged, so a straggling unit never idles the rest of
  the pool and the supervisor always knows exactly which unit each
  worker holds (no claim races).
* **Per-unit acknowledgment over pipes** — each worker owns a duplex
  pipe; results stream back as soon as they exist.  A worker death
  loses at most the single unit it currently holds.
* **Supervision** — the consuming thread doubles as the supervisor: it
  multiplexes result pipes, checks ``Process.exitcode``, and watches
  per-worker heartbeats (a daemon thread in every worker stamps a
  shared slot every ``heartbeat_interval`` seconds, so a frozen or
  SIGSTOPped worker is detected even when no unit finishes).  Dead
  workers have their in-flight unit requeued at the *front* of the
  queue and are respawned under a bounded restart budget.
* **Poison quarantine** — a unit that kills ``poison_threshold``
  consecutive host workers is quarantined as a :class:`UnitCrash`
  result instead of crash-looping the pool; callers record it in their
  failure ledger (``status="worker_crash"``) and keep the campaign
  alive.
* **Graceful shutdown** — workers ignore SIGINT (the parent owns
  interrupt policy); :meth:`WorkerPool.shutdown` sends stop sentinels,
  then escalates to SIGTERM/SIGKILL, so Ctrl-C drains cleanly and the
  checkpoint store stays resumable.

Like :mod:`repro.utils.retry`, this module is free of FI vocabulary so
any fan-out stage can reuse it.
"""

from __future__ import annotations

import gc
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
)

from multiprocessing.connection import Connection, wait

from repro.utils.errors import CampaignError
from repro.utils.parallel import fork_context, resolve_jobs

#: Stop sentinel sent down a worker's pipe at shutdown.
_STOP = None


@dataclass(frozen=True)
class PoolPolicy:
    """Supervision knobs for one :class:`WorkerPool`.

    ``jobs`` is the worker-process count (``0`` = all cores).
    ``max_worker_restarts`` bounds how many dead workers the pool will
    respawn over its lifetime — past the budget the pool shrinks, and
    once no workers remain the outstanding units are reported as
    crashes instead of silently hanging.  ``heartbeat_interval`` is how
    often each worker stamps its liveness slot; a worker silent for
    ``heartbeat_interval * heartbeat_grace`` seconds while its process
    is still alive is presumed wedged and killed.  A unit that kills
    ``poison_threshold`` consecutive host workers is quarantined.
    """

    jobs: int = 0
    max_worker_restarts: int = 8
    heartbeat_interval: float = 5.0
    heartbeat_grace: float = 6.0
    poison_threshold: int = 2

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise CampaignError(f"jobs {self.jobs} must be >= 0")
        if self.max_worker_restarts < 0:
            raise CampaignError(
                f"max_worker_restarts {self.max_worker_restarts} "
                "must be >= 0"
            )
        if self.heartbeat_interval <= 0:
            raise CampaignError(
                f"heartbeat_interval {self.heartbeat_interval} must "
                "be positive"
            )
        if self.heartbeat_grace < 2.0:
            raise CampaignError(
                f"heartbeat_grace {self.heartbeat_grace} must be >= 2 "
                "(one missed beat must never count as a death)"
            )
        if self.poison_threshold < 1:
            raise CampaignError(
                f"poison_threshold {self.poison_threshold} must be "
                ">= 1"
            )


@dataclass(frozen=True)
class UnitCrash:
    """A unit the pool gave up on because it kept killing its hosts.

    ``kills`` counts worker deaths attributed to the unit;
    ``exitcode`` is the last host's ``Process.exitcode`` (negative =
    died to a signal) and ``signal_name`` decodes it when it was a
    signal.  ``reason`` is ``"poison"`` (the unit crossed
    ``poison_threshold``) or ``"restart-budget"`` (the pool ran out of
    workers to host it).
    """

    unit_index: int
    kills: int
    exitcode: Optional[int]
    signal_name: str
    reason: str

    def describe(self) -> str:
        host = (
            f"signal {self.signal_name}" if self.signal_name
            else f"exitcode {self.exitcode}"
        )
        if self.reason == "poison":
            return (
                f"unit killed {self.kills} consecutive host worker(s) "
                f"(last death: {host}) — quarantined as a poison unit"
            )
        return (
            f"worker restart budget exhausted with the unit "
            f"unfinished after {self.kills} host death(s) "
            f"(last death: {host})"
        )


@dataclass
class UnitResult:
    """One unit's outcome: a value, a worker-side error, or a crash."""

    index: int
    value: Any = None
    #: ``"TypeName: message"`` when the worker function raised.
    error: Optional[str] = None
    crash: Optional[UnitCrash] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.crash is None


def _signal_name(exitcode: Optional[int]) -> str:
    if exitcode is None or exitcode >= 0:
        return ""
    try:
        return signal.Signals(-exitcode).name
    except ValueError:  # pragma: no cover - unknown signal number
        return f"signal {-exitcode}"


def _worker_main(
    connection: Connection,
    slot: int,
    heartbeats,
    interval: float,
    worker_fn: Callable[[Any], Any],
) -> None:
    """Worker process body: heartbeat, pull units, acknowledge results.

    Runs under the *fork* start method, so ``worker_fn`` and all the
    state it closes over are inherited copy-on-write — nothing here is
    ever pickled except unit inputs and result values.
    """
    # The parent owns interrupt policy: a terminal Ctrl-C hits the
    # whole foreground process group, and a worker that died to it
    # would be indistinguishable from a crash the supervisor should
    # retry.  SIGTERM keeps its default so shutdown() can escalate.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    # Everything inherited through the fork (netlists, engines,
    # explainer caches) is immortal for this worker's lifetime: move
    # it to the GC's permanent generation so collections never scan
    # it — and never dirty the copy-on-write pages it lives in.
    gc.freeze()

    def beat() -> None:
        while True:
            heartbeats[slot] = time.monotonic()
            time.sleep(interval)

    threading.Thread(
        target=beat, daemon=True, name="pool-heartbeat"
    ).start()
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        if message is _STOP:
            break
        unit_index, unit = message
        try:
            payload = (unit_index, True, worker_fn(unit))
        except (KeyboardInterrupt, SystemExit):
            break
        except BaseException as error:  # noqa: BLE001 — relayed
            payload = (
                unit_index, False,
                f"{type(error).__name__}: {error}",
            )
        try:
            connection.send(payload)
        except (BrokenPipeError, OSError):
            break
    connection.close()


class _Worker:
    """Parent-side handle for one pool worker."""

    __slots__ = ("process", "connection", "slot", "current")

    def __init__(self, process, connection: Connection, slot: int):
        self.process = process
        self.connection = connection
        self.slot = slot
        self.current: Optional[int] = None  # unit index held


class WorkerPool:
    """Persistent supervised pool of fork workers.

    Construct the pool *after* the read-only state ``worker_fn`` needs
    is fully built — workers fork at :meth:`run` time and inherit it
    through copy-on-write memory.  ``worker_fn`` may be any callable
    (bound methods and closures included): the fork start method never
    pickles it.

    Use as a context manager; :meth:`run` yields a
    :class:`UnitResult` per unit, in completion order, as each
    acknowledgment arrives — so callers can checkpoint durable progress
    immediately and an interrupt loses nothing already yielded.
    """

    def __init__(
        self,
        worker_fn: Callable[[Any], Any],
        policy: Optional[PoolPolicy] = None,
    ) -> None:
        context = fork_context()
        if context is None:
            raise CampaignError(
                "WorkerPool requires the fork start method; use the "
                "in-process fallback on this platform"
            )
        self._context = context
        self._worker_fn = worker_fn
        self.policy = policy or PoolPolicy()
        # Clamp to the cores this process may actually run on: the
        # units are CPU-bound, so workers beyond the affinity mask
        # can only timeshare a core — adding context-switch and
        # copy-on-write page churn without any extra throughput.
        try:
            available = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):  # pragma: no cover - non-Linux
            available = os.cpu_count() or 1
        self._jobs = max(
            1, min(resolve_jobs(self.policy.jobs), available)
        )
        self._heartbeats = context.Array(
            "d", self._jobs, lock=False
        )
        self._workers: List[_Worker] = []
        self._free_slots = list(range(self._jobs))
        self.restarts = 0  # respawns consumed from the budget
        self._poll = min(0.1, self.policy.heartbeat_interval / 4.0)

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    def _spawn(self) -> _Worker:
        slot = self._free_slots.pop()
        parent_end, child_end = self._context.Pipe(duplex=True)
        self._heartbeats[slot] = time.monotonic()
        process = self._context.Process(
            target=_worker_main,
            args=(child_end, slot, self._heartbeats,
                  self.policy.heartbeat_interval, self._worker_fn),
            daemon=True,
            name=f"pool-worker-{slot}",
        )
        process.start()
        child_end.close()
        worker = _Worker(process, parent_end, slot)
        self._workers.append(worker)
        return worker

    def _retire(self, worker: _Worker) -> None:
        try:
            worker.connection.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._workers.remove(worker)
        self._free_slots.append(worker.slot)

    def shutdown(self) -> None:
        """Stop every worker: sentinel, then SIGTERM, then SIGKILL."""
        for worker in self._workers:
            try:
                worker.connection.send(_STOP)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stuck
                worker.process.kill()
                worker.process.join(timeout=1.0)
            try:
                worker.connection.close()
            except OSError:  # pragma: no cover
                pass
        self._workers.clear()
        self._free_slots = list(range(self._jobs))

    # -- execution -----------------------------------------------------
    def run(self, units: Sequence[Any]) -> Iterator[UnitResult]:
        """Execute ``units``; yield results in completion order.

        Every unit yields exactly one :class:`UnitResult` — a value,
        a worker-side error, or (after supervision gives up on it) a
        :class:`UnitCrash`.  The pool survives worker deaths by
        requeueing the dead worker's unit and respawning under the
        restart budget.
        """
        total = len(units)
        if total == 0:
            return
        pending: deque = deque(range(total))
        kills: Dict[int, int] = {}
        last_death: Dict[int, Optional[int]] = {}
        completed: Set[int] = set()

        for _ in range(min(self._jobs, total) - len(self._workers)):
            self._spawn()

        while len(completed) < total:
            self._dispatch(units, pending)
            if not self._workers:
                # Restart budget exhausted with work outstanding:
                # report what will never run instead of hanging.
                for index in self._drain_outstanding(pending, total,
                                                     completed):
                    completed.add(index)
                    yield UnitResult(index=index, crash=UnitCrash(
                        unit_index=index,
                        kills=kills.get(index, 0),
                        exitcode=last_death.get(index),
                        signal_name=_signal_name(
                            last_death.get(index)
                        ),
                        reason="restart-budget",
                    ))
                return

            ready = wait(
                [worker.connection for worker in self._workers],
                timeout=self._poll,
            )
            by_connection = {
                worker.connection: worker for worker in self._workers
            }
            for connection in ready:
                worker = by_connection[connection]
                for result in self._receive(worker, completed):
                    yield result

            # Liveness sweep: exitcodes first, then heartbeats.
            now = time.monotonic()
            stale_after = (
                self.policy.heartbeat_interval
                * self.policy.heartbeat_grace
            )
            for worker in list(self._workers):
                alive = worker.process.is_alive()
                if alive and (
                    now - self._heartbeats[worker.slot] > stale_after
                ):
                    # Wedged (frozen allocator, SIGSTOP, runaway C
                    # loop that starved the beat thread): make the
                    # death unambiguous, then handle it below.
                    worker.process.kill()
                    worker.process.join(timeout=5.0)
                    alive = worker.process.is_alive()
                if alive:
                    continue
                worker.process.join(timeout=1.0)
                # Acks written before death are still in the pipe:
                # harvest them so a finished unit is never re-run.
                for result in self._receive(worker, completed):
                    yield result
                held = worker.current
                exitcode = worker.process.exitcode
                self._retire(worker)
                if held is not None and held not in completed:
                    kills[held] = kills.get(held, 0) + 1
                    last_death[held] = exitcode
                    if kills[held] >= self.policy.poison_threshold:
                        completed.add(held)
                        yield UnitResult(index=held, crash=UnitCrash(
                            unit_index=held,
                            kills=kills[held],
                            exitcode=exitcode,
                            signal_name=_signal_name(exitcode),
                            reason="poison",
                        ))
                    else:
                        # Front of the queue: a transient death
                        # retries immediately, and a poison unit
                        # meets its threshold before wasting more
                        # workers.
                        pending.appendleft(held)
                if self.restarts < self.policy.max_worker_restarts \
                        and len(completed) < total:
                    self.restarts += 1
                    self._spawn()

    # -- internals -----------------------------------------------------
    def _dispatch(self, units: Sequence[Any],
                  pending: deque) -> None:
        for worker in self._workers:
            if worker.current is not None or not pending:
                continue
            index = pending.popleft()
            try:
                worker.connection.send((index, units[index]))
            except (BrokenPipeError, OSError):
                # Death noticed mid-dispatch: the liveness sweep will
                # retire the worker; the unit goes back unharmed.
                pending.appendleft(index)
                continue
            worker.current = index

    def _receive(self, worker: _Worker,
                 completed: Set[int]) -> List[UnitResult]:
        """Drain every buffered acknowledgment from one worker."""
        results: List[UnitResult] = []
        while True:
            try:
                if not worker.connection.poll():
                    break
                unit_index, ok, payload = worker.connection.recv()
            except (EOFError, OSError):
                break  # death itself is the liveness sweep's job
            if worker.current == unit_index:
                worker.current = None
            if unit_index in completed:  # pragma: no cover - belt
                continue
            completed.add(unit_index)
            results.append(
                UnitResult(index=unit_index, value=payload) if ok
                else UnitResult(index=unit_index, error=payload)
            )
        return results

    def _drain_outstanding(self, pending: deque, total: int,
                           completed: Set[int]) -> List[int]:
        outstanding = [index for index in pending
                       if index not in completed]
        pending.clear()
        seen = set(outstanding) | completed
        outstanding.extend(
            index for index in range(total) if index not in seen
        )
        return outstanding


def run_supervised(
    worker_fn: Callable[[Any], Any],
    units: Sequence[Any],
    policy: Optional[PoolPolicy] = None,
) -> List[UnitResult]:
    """One-shot convenience wrapper: pool, run, shutdown, ordered list.

    Results come back indexed by unit position (unlike :meth:`run`,
    which streams in completion order).
    """
    ordered: List[Optional[UnitResult]] = [None] * len(units)
    with WorkerPool(worker_fn, policy) as pool:
        for result in pool.run(units):
            ordered[result.index] = result
    return ordered  # type: ignore[return-value]
