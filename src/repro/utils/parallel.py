"""Multi-core campaign plumbing: job resolution and shard sizing.

The sharded campaign engine splits a fault universe into contiguous
shards and fans (workload x shard) units out over worker processes.
This module holds the policy arithmetic — how many workers a host can
sustain, and how large a shard can grow before its value matrix
(``n_nets x n_words x 8`` bytes) falls out of cache — kept free of any
FI vocabulary so other fan-out stages (feature extraction, training
sweeps) can reuse it.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.utils.errors import CampaignError, WorkerCrashError

_UnitT = TypeVar("_UnitT")
_ResultT = TypeVar("_ResultT")

#: Cache budget for one shard's value matrix.  Sized for a typical
#: desktop L2 (per-core) so the gather/scatter inner loop stays
#: cache-resident; the golden machine costs one extra bit per word.
DEFAULT_SHARD_BUDGET_BYTES = 4 * 1024 * 1024


def resolve_jobs(jobs: int) -> int:
    """Worker-process count for a requested ``jobs`` value.

    ``0`` means "all cores the scheduler grants us" (cgroup/affinity
    aware where the platform exposes it); explicit values pass through.
    """
    if jobs < 0:
        raise CampaignError(f"jobs {jobs} must be >= 0")
    if jobs > 0:
        return jobs
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


def auto_shard_size(
    n_nets: int,
    budget_bytes: int = DEFAULT_SHARD_BUDGET_BYTES,
) -> int:
    """Largest shard whose value matrix fits the cache budget.

    A shard of ``f`` faults simulates ``f + 1`` machines (the golden
    machine rides along in bit 0), so choosing ``f = 64*w - 1`` packs
    exactly ``w`` words per net with no wasted lanes.
    """
    if n_nets <= 0:
        raise CampaignError(f"n_nets {n_nets} must be positive")
    words = max(1, budget_bytes // (n_nets * 8))
    return words * 64 - 1


def shard_bounds(n_items: int, shard_size: int) -> List[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` shard bounds covering ``n_items``.

    ``shard_size <= 0`` means one shard spanning everything (the
    unsharded fast path for small universes).
    """
    if n_items <= 0:
        raise CampaignError(f"cannot shard {n_items} items")
    if shard_size <= 0 or shard_size >= n_items:
        return [(0, n_items)]
    return [
        (start, min(start + shard_size, n_items))
        for start in range(0, n_items, shard_size)
    ]


def map_in_forks(
    worker: Callable[[_UnitT], _ResultT],
    units: Sequence[_UnitT],
    jobs: int,
) -> List[_ResultT]:
    """``[worker(unit) for unit in units]`` over fork worker processes.

    Results come back in ``units`` order.  ``worker`` must be a
    module-level callable; non-picklable context (netlists, trained
    models) travels through a module global set before the pool forks,
    exactly like the campaign runner's ``_WORKER_RUNNER`` pattern.
    Degrades to in-process execution when ``jobs <= 1``, when there is
    at most one unit, or on platforms without the fork start method —
    the in-process path and the fork path are the same per-unit code,
    so results are identical either way.  In-process worker exceptions
    propagate with their original type; on the fork path, a worker
    exception or a worker process *death* (segfault, OOM kill —
    surfaced by the executor as ``BrokenProcessPool``) is wrapped into
    a typed :class:`~repro.utils.errors.WorkerCrashError` that names
    the first failing unit (in ``units`` order) and carries every
    sibling result that had already completed, instead of discarding
    them; the original exception rides along as ``__cause__``.

    This is the supervision-free fallback path; sustained fan-out goes
    through :class:`repro.utils.workerpool.WorkerPool`, which restarts
    dead workers and quarantines poison units instead of raising.
    """
    jobs = resolve_jobs(jobs)
    context = fork_context()
    if jobs <= 1 or len(units) <= 1 or context is None:
        return [worker(unit) for unit in units]
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(units)), mp_context=context,
    ) as pool:
        futures = [pool.submit(worker, unit) for unit in units]
        results: List[_ResultT] = []
        for index, future in enumerate(futures):
            try:
                results.append(future.result())
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as error:  # noqa: BLE001 — wrapped
                completed = dict(enumerate(results))
                completed.update(
                    (position, sibling.result())
                    for position, sibling in enumerate(futures)
                    if position > index and sibling.done()
                    and not sibling.cancelled()
                    and sibling.exception() is None
                )
                what = (
                    "fork worker died executing"
                    if isinstance(error, BrokenProcessPool)
                    else "fork worker raised "
                         f"{type(error).__name__} executing"
                )
                raise WorkerCrashError(
                    f"{what} unit {index} of {len(units)} ({error}); "
                    f"{len(completed)} sibling unit(s) completed and "
                    "were harvested",
                    unit_index=index,
                    completed=completed,
                ) from error
        return results


def fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The ``fork`` multiprocessing context, or ``None`` where missing.

    Fault campaigns fan out with *fork* workers: netlists carry cell
    lambdas that cannot pickle, so workers must inherit the campaign
    context through copy-on-write memory instead of the spawn pipe.
    Callers fall back to in-process execution when this returns None
    (e.g. Windows).
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None
