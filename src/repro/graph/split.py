"""Train/validation node splits.

The paper trains on a subset of a design's nodes and validates on the
rest (80/20, §4.1).  The split is stratified on the binary label so
small designs keep both classes in the validation fold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.errors import ModelError
from repro.utils.rng import SeedLike, derive_rng


@dataclass
class Split:
    """Boolean train/validation node masks."""

    train_mask: np.ndarray
    val_mask: np.ndarray

    @property
    def n_train(self) -> int:
        return int(self.train_mask.sum())

    @property
    def n_val(self) -> int:
        return int(self.val_mask.sum())


def stratified_split(
    labels: np.ndarray,
    val_fraction: float = 0.2,
    seed: SeedLike = 0,
) -> Split:
    """Stratified random split of node indices.

    Each label class contributes ``val_fraction`` of its members to the
    validation fold (at least one when the class has two or more
    members).
    """
    labels = np.asarray(labels)
    if labels.ndim != 1 or len(labels) == 0:
        raise ModelError("labels must be a non-empty 1-D array")
    if not 0.0 < val_fraction < 1.0:
        raise ModelError(f"val_fraction {val_fraction} outside (0, 1)")

    rng = derive_rng(seed, "stratified_split")
    val_mask = np.zeros(len(labels), dtype=bool)
    for value in np.unique(labels):
        members = np.flatnonzero(labels == value)
        rng.shuffle(members)
        count = int(round(val_fraction * len(members)))
        if len(members) >= 2:
            count = max(count, 1)
        count = min(count, len(members) - 1) if len(members) >= 2 else count
        val_mask[members[:count]] = True
    return Split(train_mask=~val_mask, val_mask=val_mask)


def kfold_splits(
    labels: np.ndarray,
    k: int = 5,
    seed: SeedLike = 0,
):
    """Stratified k-fold cross-validation splits.

    Yields ``k`` :class:`Split` objects whose validation folds
    partition the node set; each class's members are spread evenly
    across folds.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1 or len(labels) == 0:
        raise ModelError("labels must be a non-empty 1-D array")
    if not 2 <= k <= len(labels):
        raise ModelError(f"k={k} infeasible for {len(labels)} nodes")

    rng = derive_rng(seed, "kfold")
    fold_of = np.zeros(len(labels), dtype=np.int64)
    for value in np.unique(labels):
        members = np.flatnonzero(labels == value)
        rng.shuffle(members)
        fold_of[members] = np.arange(len(members)) % k
    for fold in range(k):
        val_mask = fold_of == fold
        if not val_mask.any() or val_mask.all():
            raise ModelError(
                f"fold {fold} degenerate; reduce k or add nodes"
            )
        yield Split(train_mask=~val_mask, val_mask=val_mask)
