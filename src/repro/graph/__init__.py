"""Graph construction: netlist-to-graph translation, adjacency
normalization (Eq. 2), the GraphData container, and node splits."""

from repro.graph.adjacency import adjacency_matrix, normalized_adjacency
from repro.graph.build import (
    netlist_edges,
    netlist_to_networkx,
    undirected_edges,
)
from repro.graph.data import GraphData, build_graph_data
from repro.graph.split import Split, kfold_splits, stratified_split

__all__ = [
    "adjacency_matrix",
    "normalized_adjacency",
    "netlist_edges",
    "netlist_to_networkx",
    "undirected_edges",
    "GraphData",
    "build_graph_data",
    "Split",
    "kfold_splits",
    "stratified_split",
]
