"""Adjacency-matrix construction and normalization (Eq. 1/2).

The paper's GCN layer propagates through the normalized adjacency
``A* = D^-1/2 (A + I) D^-1/2`` (symmetric normalization with
self-loops); row normalization ``D^-1 (A + I)`` is provided for the
ablation benchmark.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.errors import ModelError


def adjacency_matrix(edge_index: np.ndarray, n_nodes: int,
                     undirected: bool = True) -> sp.csr_matrix:
    """Binary sparse adjacency from a ``(2, E)`` edge list."""
    if edge_index.ndim != 2 or edge_index.shape[0] != 2:
        raise ModelError("edge_index must have shape (2, E)")
    rows, cols = edge_index
    if len(rows) and (rows.max() >= n_nodes or cols.max() >= n_nodes):
        raise ModelError("edge index exceeds node count")
    data = np.ones(len(rows), dtype=np.float64)
    matrix = sp.coo_matrix(
        (data, (rows, cols)), shape=(n_nodes, n_nodes)
    )
    if undirected:
        matrix = matrix + matrix.T
    matrix = matrix.tocsr()
    matrix.data[:] = 1.0  # collapse duplicates to binary
    return matrix


def normalized_adjacency(
    edge_index: np.ndarray,
    n_nodes: int,
    mode: str = "symmetric",
    self_loops: bool = True,
) -> sp.csr_matrix:
    """The propagation matrix ``A*`` of Eq. 2.

    Args:
        edge_index: ``(2, E)`` gate-to-gate edges.
        n_nodes: Number of graph nodes.
        mode: ``"symmetric"`` for ``D^-1/2 Â D^-1/2`` (the paper's
            choice) or ``"row"`` for ``D^-1 Â``.
        self_loops: Add the identity to ``A`` before normalizing.
    """
    adjacency = adjacency_matrix(edge_index, n_nodes)
    if self_loops:
        adjacency = (adjacency + sp.identity(n_nodes, format="csr"))
        adjacency.data[:] = np.minimum(adjacency.data, 1.0)

    degree = np.asarray(adjacency.sum(axis=1)).ravel()
    degree[degree == 0.0] = 1.0  # isolated nodes keep zero rows finite

    if mode == "symmetric":
        inv_sqrt = sp.diags(1.0 / np.sqrt(degree))
        return (inv_sqrt @ adjacency @ inv_sqrt).tocsr()
    if mode == "row":
        inv = sp.diags(1.0 / degree)
        return (inv @ adjacency).tocsr()
    raise ModelError(f"unknown normalization mode {mode!r}")
