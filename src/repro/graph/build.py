"""Netlist-to-graph translation (§3.1 of the paper).

Each gate becomes a graph node (named ``{CELL}_{instance}``); each wire
from a driving gate to a reading gate becomes an edge.  Multiple
connections between the same gate pair collapse to one edge; primary
inputs/outputs are not nodes (the paper's nodes are netlist gates).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.netlist.netlist import Netlist


def netlist_edges(netlist: Netlist) -> np.ndarray:
    """Directed driver->sink gate edges, shape ``(2, n_edges)``.

    Self-loops from a flop's feedback port are excluded (normalization
    adds uniform self-loops separately, per Eq. 2).
    """
    adjacency = netlist.gate_adjacency()
    targets = adjacency.fanout_indices
    if targets.size == 0:
        return np.zeros((2, 0), dtype=np.int64)
    # Fanout CSR rows are already deduplicated per gate, so the edge
    # list is one repeat + stack — no per-edge Python work.
    sources = np.repeat(
        np.arange(netlist.n_gates, dtype=np.int64),
        np.diff(adjacency.fanout_indptr),
    )
    return np.stack(
        [sources, targets.astype(np.int64, copy=False)], axis=0
    )


def undirected_edges(edge_index: np.ndarray) -> np.ndarray:
    """Symmetrize a directed edge list (deduplicated)."""
    if edge_index.shape[1] == 0:
        return edge_index
    forward = edge_index
    backward = edge_index[::-1]
    both = np.concatenate([forward, backward], axis=1)
    # Deduplicate columns.
    order = np.lexsort((both[1], both[0]))
    both = both[:, order]
    keep = np.ones(both.shape[1], dtype=bool)
    keep[1:] = (np.diff(both[0]) != 0) | (np.diff(both[1]) != 0)
    return both[:, keep]


def netlist_to_networkx(netlist: Netlist) -> nx.DiGraph:
    """Directed :class:`networkx.DiGraph` view of the netlist graph.

    Nodes carry ``cell``, ``instance`` and ``sequential`` attributes;
    handy for visualization and for explainer subgraph extraction.
    """
    graph = nx.DiGraph(name=netlist.name)
    for gate in netlist.gates:
        graph.add_node(
            gate.index,
            name=gate.node_name,
            cell=gate.cell.name,
            instance=gate.instance,
            sequential=gate.is_sequential,
        )
    edge_index = netlist_edges(netlist)
    graph.add_edges_from(zip(edge_index[0], edge_index[1]))
    return graph
