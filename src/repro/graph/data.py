"""Graph dataset container binding features, structure and labels."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.features.extract import NodeFeatures
from repro.fi.dataset import CriticalityDataset
from repro.graph.adjacency import normalized_adjacency
from repro.graph.build import netlist_edges
from repro.netlist.netlist import Netlist
from repro.utils.errors import ModelError


@dataclass
class GraphData:
    """Everything a graph model needs for one design.

    Attributes:
        design: Netlist name.
        node_names: Gate node names, aligned with matrix rows.
        x: Feature matrix ``(N, F)`` (standardized copy of the raw
            features; ``x_raw`` keeps the unscaled values for
            reporting).
        edge_index: ``(2, E)`` directed gate-to-gate edges.
        y_class: Binary Critical labels ``(N,)``.
        y_score: Continuous criticality scores ``(N,)``.
        feature_names: Column names of ``x``.
    """

    design: str
    node_names: List[str]
    x: np.ndarray
    x_raw: np.ndarray
    edge_index: np.ndarray
    y_class: np.ndarray
    y_score: np.ndarray
    feature_names: List[str]
    _a_norm_cache: dict = field(default_factory=dict, repr=False)
    _propagation_cache: Optional[object] = field(default=None, repr=False)

    @property
    def n_nodes(self) -> int:
        return self.x.shape[0]

    @property
    def n_features(self) -> int:
        return self.x.shape[1]

    def a_norm(self, mode: str = "symmetric",
               self_loops: bool = True) -> sp.csr_matrix:
        """The normalized propagation matrix (cached per mode)."""
        key = (mode, self_loops)
        if key not in self._a_norm_cache:
            self._a_norm_cache[key] = normalized_adjacency(
                self.edge_index, self.n_nodes, mode=mode,
                self_loops=self_loops,
            )
        return self._a_norm_cache[key]

    def propagation_cache(self):
        """This design's shared constant-propagation cache.

        One :class:`repro.nn.engine.PropagationCache` per dataset:
        the training engine's fast-math first layer and SGC's
        ``A*^K X`` smoothing both draw their ``A* @ X`` products from
        it, so the work is done once per design no matter how many
        models, grid candidates, or seeds train on it.
        """
        if self._propagation_cache is None:
            from repro.nn.engine import PropagationCache

            self._propagation_cache = PropagationCache()
        return self._propagation_cache

    def node_index(self, node_name: str) -> int:
        """Row index of a named node."""
        try:
            return self.node_names.index(node_name)
        except ValueError:
            raise ModelError(f"unknown node {node_name!r}") from None

    def subset_features(self, feature_names: List[str]) -> "GraphData":
        """A copy restricted to the named feature columns (ablations)."""
        indices = []
        for name in feature_names:
            if name not in self.feature_names:
                raise ModelError(f"unknown feature {name!r}")
            indices.append(self.feature_names.index(name))
        return GraphData(
            design=self.design,
            node_names=list(self.node_names),
            x=self.x[:, indices],
            x_raw=self.x_raw[:, indices],
            edge_index=self.edge_index,
            y_class=self.y_class,
            y_score=self.y_score,
            feature_names=list(feature_names),
        )


def build_graph_data(
    netlist: Netlist,
    features: NodeFeatures,
    dataset: CriticalityDataset,
) -> GraphData:
    """Assemble a :class:`GraphData` from its three ingredients.

    Features and labels are re-aligned by node name, so campaign node
    order need not match gate order.
    """
    node_names = netlist.node_names()
    if features.node_names != node_names:
        raise ModelError(
            "feature rows are not aligned with the netlist's gates"
        )
    label_position = {name: i for i, name in enumerate(dataset.node_names)}
    try:
        align = np.array([label_position[name] for name in node_names])
    except KeyError as missing:
        raise ModelError(
            f"dataset has no label for node {missing}"
        ) from None

    standardized = features.standardized()
    return GraphData(
        design=netlist.name,
        node_names=node_names,
        x=standardized.matrix,
        x_raw=features.matrix,
        edge_index=netlist_edges(netlist),
        y_class=dataset.labels[align],
        y_score=dataset.scores[align],
        feature_names=list(features.feature_names),
    )
