"""End-to-end pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

from repro.fi.dataset import DEFAULT_THRESHOLD
from repro.nn.training import TrainingConfig


@dataclass
class AnalyzerConfig:
    """Knobs for :class:`~repro.core.analyzer.FaultCriticalityAnalyzer`.

    Defaults mirror the paper's experimental setup: 80/20 node split,
    criticality threshold 0.5, Table 1 GCN architecture, and a diverse
    16-workload FI campaign.
    """

    # --- workload / fault-injection stage ---
    n_workloads: int = 16
    workload_cycles: int = 200
    #: "auto" = the design's registered FuSa severity policy
    severity: Union[float, str] = "auto"
    criticality_threshold: float = DEFAULT_THRESHOLD

    # --- feature stage ---
    probability_source: str = "simulation"  # or "cop"
    extended_features: bool = False

    # --- model stage ---
    val_fraction: float = 0.2
    hidden_dims: Tuple[int, ...] = (16, 32, 64)
    dropout: float = 0.3
    adjacency_mode: str = "symmetric"
    self_loops: bool = True
    training: TrainingConfig = field(default_factory=TrainingConfig)
    regressor_training: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(lr=0.005, epochs=400)
    )

    # --- reproducibility ---
    seed: int = 0
