"""End-to-end fault-criticality analysis (Figure 2 of the paper).

:class:`FaultCriticalityAnalyzer` chains the full flow for one design:

    netlist -> graph + node features
            -> fault-injection campaign over diverse workloads
            -> criticality dataset (Algorithm 1)
            -> GCN classifier (Table 1) + baselines on an 80/20 split
            -> GCN regressor for continuous criticality scores
            -> GNNExplainer interpretations

Each stage is lazily computed and cached, so callers can run only what
they need (e.g. ``analyzer.classifier`` without ever explaining).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import AnalyzerConfig
from repro.explain import (
    Explanation,
    GlobalImportance,
    GNNExplainer,
    aggregate_importance,
)
from repro.features import NodeFeatures, extract_features, patch_features
from repro.fi import (
    CampaignResult,
    CriticalityDataset,
    EcoResult,
    dataset_from_campaign,
    run_campaign,
    run_eco_campaign,
)
from repro.graph import GraphData, Split, build_graph_data, stratified_split
from repro.metrics import (
    ConfusionMatrix,
    RocCurve,
    accuracy,
    classification_conformity,
    pearson,
    roc_curve,
)
from repro.models import (
    BASELINE_NAMES,
    GCNClassifier,
    GCNRegressor,
    make_classifier,
)
from repro.netlist.netlist import Netlist
from repro.sim import Workload, design_workloads
from repro.utils.errors import ModelError
from repro.utils.rng import derive_rng


@dataclass
class NodeReport:
    """One row of the paper's Table 2."""

    design: str
    node_name: str
    classification: str            # "Critical" / "Non-critical"
    feature_scores: Dict[str, float]
    criticality_score: float
    ground_truth_score: float

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "design": self.design,
            "node": self.node_name,
            "classification": self.classification,
        }
        for name, value in self.feature_scores.items():
            row[name] = round(value, 2)
        row["criticality score"] = round(self.criticality_score, 2)
        return row


@dataclass
class EcoAnalysis:
    """Everything :meth:`FaultCriticalityAnalyzer.eco_update` produces
    for an edited design.

    The campaign rows, features, dataset, and graph are bitwise
    identical to a from-scratch analysis of ``netlist`` with the same
    workloads; the models are the *baseline's* trained weights rebound
    to the edited graph (no retraining), which is what makes the
    incremental pass fast — see ``docs/fault_injection_guide.md``.
    """

    netlist: Netlist
    eco: EcoResult
    features: NodeFeatures
    dataset: CriticalityDataset
    data: GraphData
    classifier: GCNClassifier
    regressor: GCNRegressor

    @property
    def campaign(self) -> CampaignResult:
        """The merged (cached + re-simulated) campaign result."""
        return self.eco.result

    def predictions(self) -> np.ndarray:
        """Hard critical/non-critical labels from the rebound GCN."""
        return self.classifier.predict()

    def scores(self) -> np.ndarray:
        """Continuous criticality scores from the rebound regressor."""
        return self.regressor.predict()

    def as_analyzer(
        self, config: Optional[AnalyzerConfig] = None,
        workloads: Optional[Sequence[Workload]] = None,
    ) -> "FaultCriticalityAnalyzer":
        """A fresh analyzer for the edited design with the expensive
        stages (campaign, features, dataset, graph) pre-seeded from
        this incremental result.  Models stay lazy — accessing
        ``.classifier`` on the returned analyzer *retrains* on the
        edited graph; use :attr:`classifier` here for the transferred
        (no-retrain) weights.
        """
        analyzer = FaultCriticalityAnalyzer(
            self.netlist, config=config, workloads=workloads
        )
        analyzer._campaign = self.eco.result
        analyzer._features = self.features
        analyzer._dataset = self.dataset
        analyzer._data = self.data
        return analyzer

    def summary(self) -> Dict[str, object]:
        """One-line-per-fact overview of the incremental update."""
        predictions = self.predictions()
        return {
            "design": self.netlist.name,
            "edits": self.eco.diff.n_edits,
            "dirty_nodes": self.eco.region.n_dirty,
            "dirty_fraction": round(self.eco.region.dirty_fraction, 4),
            "faults_resimulated": self.eco.n_dirty,
            "faults_reused": self.eco.n_reused,
            "reuse_fraction": round(self.eco.reuse_fraction, 4),
            "fi_seconds": round(self.eco.dirty_seconds, 2),
            "base_fi_seconds": round(self.eco.base_seconds, 2),
            "critical_fraction": round(float(predictions.mean()), 4),
        }


class FaultCriticalityAnalyzer:
    """The framework's main entry point for one design."""

    def __init__(self, netlist: Netlist,
                 config: Optional[AnalyzerConfig] = None,
                 workloads: Optional[Sequence[Workload]] = None,
                 store=None):
        self.netlist = netlist
        self.config = config or AnalyzerConfig()
        self.store = store
        self._memo = None
        self._workloads: Optional[List[Workload]] = (
            list(workloads) if workloads is not None else None
        )
        self.workloads_provided = workloads is not None
        self._campaign: Optional[CampaignResult] = None
        self._dataset: Optional[CriticalityDataset] = None
        self._features: Optional[NodeFeatures] = None
        self._data: Optional[GraphData] = None
        self._split: Optional[Split] = None
        self._classifier: Optional[GCNClassifier] = None
        self._regressor: Optional[GCNRegressor] = None
        self._explainer: Optional[GNNExplainer] = None

    @property
    def memo(self):
        """Store-backed memoization glue (``None`` without a store)."""
        if self._memo is None and self.store is not None:
            from repro.store.memo import AnalysisMemo

            self._memo = AnalysisMemo(self.store, self)
        return self._memo

    def _memoized(self, stage: str, compute):
        """Route one stage through the artifact store when attached."""
        memo = self.memo
        if memo is None:
            return compute()
        return getattr(memo, stage)(compute)

    # ------------------------------------------------------------------
    # pipeline stages (lazy, cached)
    # ------------------------------------------------------------------
    @property
    def workloads(self) -> List[Workload]:
        """The diverse workload suite (generated on first use)."""
        if self._workloads is None:
            self._workloads = list(self._memoized(
                "workloads",
                lambda: design_workloads(
                    self.netlist.name, self.netlist,
                    count=self.config.n_workloads,
                    cycles=self.config.workload_cycles,
                    seed=self.config.seed,
                ),
            ))
        return self._workloads

    @property
    def campaign(self) -> CampaignResult:
        """The fault-injection campaign result."""
        if self._campaign is None:
            self._campaign = self._memoized(
                "campaign",
                lambda: run_campaign(
                    self.netlist, self.workloads,
                    severity=self.config.severity,
                ),
            )
        return self._campaign

    @property
    def dataset(self) -> CriticalityDataset:
        """Algorithm 1's node scores and labels."""
        if self._dataset is None:
            self._dataset = self._memoized(
                "dataset",
                lambda: dataset_from_campaign(
                    self.campaign,
                    threshold=self.config.criticality_threshold,
                ),
            )
        return self._dataset

    @property
    def features(self) -> NodeFeatures:
        """The §3.1 node feature matrix."""
        if self._features is None:
            self._features = self._memoized(
                "features",
                lambda: extract_features(
                    self.netlist,
                    workloads=self.workloads
                    if self.config.probability_source == "simulation"
                    else None,
                    probability_source=self.config.probability_source,
                    extended=self.config.extended_features,
                ),
            )
        return self._features

    @property
    def data(self) -> GraphData:
        """Graph + features + labels, ready for models."""
        if self._data is None:
            self._data = self._memoized(
                "data",
                lambda: build_graph_data(
                    self.netlist, self.features, self.dataset
                ),
            )
        return self._data

    @property
    def split(self) -> Split:
        """The stratified 80/20 node split."""
        if self._split is None:
            self._split = stratified_split(
                self.data.y_class, self.config.val_fraction,
                seed=(self.config.seed, "split"),
            )
        return self._split

    @property
    def classifier(self) -> GCNClassifier:
        """The trained Table 1 GCN classifier."""
        if self._classifier is None:
            def train() -> GCNClassifier:
                model = GCNClassifier(
                    hidden_dims=self.config.hidden_dims,
                    dropout=self.config.dropout,
                    adjacency_mode=self.config.adjacency_mode,
                    self_loops=self.config.self_loops,
                    seed=(self.config.seed, "gcn"),
                    config=self.config.training,
                )
                return model.fit(self.data, self.split)

            self._classifier = self._memoized("classifier", train)
        return self._classifier

    @property
    def regressor(self) -> GCNRegressor:
        """The trained criticality-score regressor (§3.4)."""
        if self._regressor is None:
            def train() -> GCNRegressor:
                model = GCNRegressor(
                    hidden_dims=self.config.hidden_dims,
                    dropout=self.config.dropout,
                    adjacency_mode=self.config.adjacency_mode,
                    self_loops=self.config.self_loops,
                    seed=(self.config.seed, "gcn-regressor"),
                    config=self.config.regressor_training,
                )
                return model.fit(self.data, self.split)

            self._regressor = self._memoized("regressor", train)
        return self._regressor

    def grid_search(
        self,
        hidden_dim_options: Optional[Sequence[Sequence[int]]] = None,
        dropout_options: Optional[Sequence[float]] = None,
        lr_options: Optional[Sequence[float]] = None,
        epochs: int = 200,
        jobs: int = 1,
        fast_math: bool = False,
        max_worker_restarts: int = 8,
        heartbeat_interval: float = 5.0,
    ):
        """§3.3.2 hyperparameter sweep on this design's graph.

        Trains one Table 1-style GCN stack per grid point on the
        design's features/labels/split and ranks by validation
        accuracy.  ``jobs`` fans candidates out over the supervised
        fork worker pool (``0`` = all cores; the ranking is bitwise
        identical to serial); ``fast_math`` opts candidate trainings
        into the engine's reordered kernels and the design's shared
        first-layer propagation cache (faster, not bitwise).  Option
        sequences default to the paper's grid.
        """
        from repro.models.gcn import build_gcn_stack
        from repro.nn.gridsearch import grid_search as _grid_search

        data, split = self.data, self.split
        a_norm = data.a_norm(
            self.config.adjacency_mode, self.config.self_loops
        )

        def builder(hidden_dims, dropout, seed):
            return build_gcn_stack(
                data.n_features, 2, a_norm,
                hidden_dims=hidden_dims, dropout=dropout,
                log_softmax=True, seed=seed,
            )

        options = {}
        if hidden_dim_options is not None:
            options["hidden_dim_options"] = hidden_dim_options
        if dropout_options is not None:
            options["dropout_options"] = dropout_options
        if lr_options is not None:
            options["lr_options"] = lr_options

        def compute():
            return _grid_search(
                builder, data.x, data.y_class,
                split.train_mask, split.val_mask,
                epochs=epochs, seed=self.config.seed,
                jobs=jobs, fast_math=fast_math,
                cache=data.propagation_cache(),
                max_worker_restarts=max_worker_restarts,
                heartbeat_interval=heartbeat_interval,
                **options,
            )

        memo = self.memo
        if memo is None:
            return compute()
        # Key on the *resolved* grid (explicit options, else the
        # sweep's documented defaults), never on jobs — the ranking is
        # bitwise identical for any fan-out.
        import inspect

        defaults = inspect.signature(_grid_search).parameters
        return memo.gridsearch(
            hidden_dim_options=(
                hidden_dim_options
                if hidden_dim_options is not None
                else defaults["hidden_dim_options"].default
            ),
            dropout_options=(
                dropout_options if dropout_options is not None
                else defaults["dropout_options"].default
            ),
            lr_options=(
                lr_options if lr_options is not None
                else defaults["lr_options"].default
            ),
            epochs=epochs, fast_math=fast_math, compute=compute,
        )

    @property
    def explainer(self) -> GNNExplainer:
        """GNNExplainer bound to the trained classifier."""
        if self._explainer is None:
            self._explainer = GNNExplainer(
                self.classifier, self.data,
                seed=(self.config.seed, "explainer"),
            )
        return self._explainer

    # ------------------------------------------------------------------
    # evaluation views
    # ------------------------------------------------------------------
    def validation_accuracy(self) -> float:
        """GCN accuracy on the held-out nodes (the headline metric)."""
        return self.classifier.accuracy(self.split.val_mask)

    def validation_roc(self) -> RocCurve:
        """ROC of the GCN's critical-class probability on held-out
        nodes (Figure 4)."""
        probabilities = self.classifier.predict_proba()[:, 1]
        mask = self.split.val_mask
        return roc_curve(self.data.y_class[mask], probabilities[mask])

    def validation_confusion(self) -> ConfusionMatrix:
        """Confusion counts on the held-out nodes."""
        mask = self.split.val_mask
        return ConfusionMatrix.from_predictions(
            self.data.y_class[mask], self.classifier.predict()[mask]
        )

    def baseline_accuracies(
        self, names: Sequence[str] = BASELINE_NAMES
    ) -> Dict[str, float]:
        """Validation accuracy of each baseline classifier."""
        def compute() -> Dict[str, float]:
            data, split = self.data, self.split
            results: Dict[str, float] = {}
            for name in names:
                model = make_classifier(name)
                model.fit(data.x[split.train_mask],
                          data.y_class[split.train_mask])
                results[name] = model.score(
                    data.x[split.val_mask],
                    data.y_class[split.val_mask],
                )
            return results

        memo = self.memo
        if memo is None:
            return compute()
        return memo.baselines(list(names), compute)

    def baseline_rocs(
        self, names: Sequence[str] = BASELINE_NAMES
    ) -> Dict[str, RocCurve]:
        """Validation ROC curves of each baseline (Figure 4)."""
        data, split = self.data, self.split
        curves: Dict[str, RocCurve] = {}
        for name in names:
            model = make_classifier(name)
            model.fit(data.x[split.train_mask],
                      data.y_class[split.train_mask])
            scores = model.predict_proba(data.x[split.val_mask])[:, 1]
            curves[name] = roc_curve(
                data.y_class[split.val_mask], scores
            )
        return curves

    def regression_quality(self) -> Dict[str, float]:
        """Score-prediction metrics on held-out nodes, including the
        >85 % classifier/regressor conformity claim of §5."""
        mask = self.split.val_mask
        predicted = self.regressor.predict()
        return {
            "pearson": pearson(predicted[mask], self.data.y_score[mask]),
            "conformity_with_classifier": classification_conformity(
                predicted[mask],
                self.classifier.predict()[mask],
                threshold=self.config.criticality_threshold,
            ),
            "conformity_with_labels": classification_conformity(
                predicted[mask],
                self.data.y_class[mask],
                threshold=self.config.criticality_threshold,
            ),
        }

    def explain_nodes(self, nodes: Sequence["str | int"],
                      jobs: int = 1,
                      batch_size: Optional[int] = None,
                      max_worker_restarts: int = 8,
                      heartbeat_interval: float = 5.0,
                      ) -> List[Explanation]:
        """Per-node GNNExplainer interpretations.

        ``jobs`` fans the explainer's block-diagonal batches out over
        the supervised fork worker pool (0 = all cores);
        ``batch_size`` caps nodes per batch; ``max_worker_restarts``
        and ``heartbeat_interval`` tune the pool's crash supervision.
        Results are identical for every combination, so none of those
        knobs participate in the artifact-store key.
        """
        def compute() -> List[Explanation]:
            return self.explainer.explain_many(
                nodes, jobs=jobs, batch_size=batch_size,
                max_worker_restarts=max_worker_restarts,
                heartbeat_interval=heartbeat_interval,
            )

        memo = self.memo
        if memo is None:
            return compute()
        indices = [
            self.data.node_index(node) if isinstance(node, str)
            else int(node)
            for node in nodes
        ]
        return memo.explanations(indices, compute)

    def sample_explain_nodes(self, per_class: int = 3) -> List[int]:
        """A deterministic held-out node sample covering both predicted
        classes — what ``repro explain`` runs when no nodes are named.

        Up to ``per_class`` Critical and ``per_class`` Non-critical
        validation nodes, drawn from a seed-derived stream so the
        sample is stable across runs of the same configuration.
        """
        predictions = self.classifier.predict()
        candidates = np.flatnonzero(self.split.val_mask)
        rng = derive_rng(self.config.seed, "explain-sample")
        chosen: List[int] = []
        for label in (1, 0):
            pool = candidates[predictions[candidates] == label]
            if len(pool) > per_class:
                pool = np.sort(rng.choice(pool, per_class,
                                          replace=False))
            chosen.extend(int(node) for node in pool)
        return chosen

    def global_importance(
        self, sample: int = 40, jobs: int = 1
    ) -> GlobalImportance:
        """Aggregated feature importance over ``sample`` held-out nodes
        (Eq. 3 / Figure 5b)."""
        candidates = np.flatnonzero(self.split.val_mask)
        rng = np.random.default_rng(self.config.seed)
        if len(candidates) > sample:
            candidates = rng.choice(candidates, sample, replace=False)
        explanations = self.explain_nodes(
            [int(c) for c in candidates], jobs=jobs
        )
        return aggregate_importance(explanations)

    def node_report(self, nodes: Sequence["str | int"],
                    jobs: int = 1,
                    max_worker_restarts: int = 8,
                    heartbeat_interval: float = 5.0,
                    ) -> List[NodeReport]:
        """Table 2 rows: classification, feature importances, predicted
        criticality score — for the named nodes."""
        data = self.data
        predictions = self.classifier.predict()
        scores = self.regressor.predict()
        explanations = self.explain_nodes(
            nodes, jobs=jobs,
            max_worker_restarts=max_worker_restarts,
            heartbeat_interval=heartbeat_interval,
        )
        reports: List[NodeReport] = []
        for node, explanation in zip(nodes, explanations):
            index = (
                data.node_index(node) if isinstance(node, str) else int(node)
            )
            reports.append(NodeReport(
                design=data.design,
                node_name=data.node_names[index],
                classification=(
                    "Critical" if predictions[index] == 1
                    else "Non-critical"
                ),
                feature_scores=dict(zip(
                    explanation.feature_names,
                    (float(v) for v in explanation.feature_scores),
                )),
                criticality_score=float(scores[index]),
                ground_truth_score=float(data.y_score[index]),
            ))
        return reports

    def summary(self) -> Dict[str, object]:
        """One-line-per-fact overview of the full analysis."""
        try:
            auc = round(self.validation_roc().auc, 4)
        except ModelError:
            auc = None  # single-class validation fold
        return {
            "design": self.netlist.name,
            "nodes": self.data.n_nodes,
            "critical_fraction": round(float(self.data.y_class.mean()), 4),
            "workloads": len(self.workloads),
            "gcn_accuracy": round(self.validation_accuracy(), 4),
            "gcn_auc": auc,
            "fi_seconds": round(self.campaign.simulation_seconds, 2),
        }

    # ------------------------------------------------------------------
    # incremental re-analysis (ECO mode)
    # ------------------------------------------------------------------
    def eco_update(
        self, new_netlist: Netlist, *,
        base_checkpoint_dir: "Optional[str]" = None,
        jobs: int = 1,
        shard_size: int = 0,
        checkpoint_dir: "Optional[str]" = None,
        resume: bool = False,
        timeout: Optional[float] = None,
        retries: int = 0,
    ) -> EcoAnalysis:
        """Re-analyze an edited version of this design incrementally.

        Diffs ``new_netlist`` against the baseline, re-simulates only
        the faults inside the edit's dirty region
        (:func:`repro.fi.run_eco_campaign`), merges the rest from the
        cached baseline campaign, patches the feature matrix
        (:func:`repro.features.patch_features`), and rebinds the
        already-trained GCN classifier/regressor to the edited graph
        via ``transfer_to`` — no retraining.  The merged campaign,
        features, dataset, and graph are bitwise identical to a full
        from-scratch run on ``new_netlist``.

        By default the in-memory :attr:`campaign` is the baseline
        (computed now if not cached); pass ``base_checkpoint_dir`` to
        reuse a PR 1/3-style on-disk checkpoint store instead, in which
        case the baseline campaign is never simulated here.  Raises
        :class:`~repro.utils.errors.EcoError` when the baseline cannot
        be soundly reused.
        """
        from repro.fi.eco import _remap_workloads

        if base_checkpoint_dir is not None:
            eco = run_eco_campaign(
                self.netlist, new_netlist, self.workloads,
                base_checkpoint_dir=base_checkpoint_dir,
                severity=self.config.severity,
                jobs=jobs, shard_size=shard_size,
                checkpoint_dir=checkpoint_dir, resume=resume,
                timeout=timeout, retries=retries,
            )
        else:
            eco = run_eco_campaign(
                self.netlist, new_netlist, self.workloads,
                base=self.campaign,
                severity=self.config.severity,
                jobs=jobs, shard_size=shard_size,
                checkpoint_dir=checkpoint_dir, resume=resume,
                timeout=timeout, retries=retries,
            )
        remapped = _remap_workloads(new_netlist, self.workloads)
        features = patch_features(
            self.features, new_netlist, eco.region.dirty_nodes,
            workloads=remapped
            if self.config.probability_source == "simulation" else None,
            probability_source=self.config.probability_source,
        )
        dataset = dataset_from_campaign(
            eco.result, threshold=self.config.criticality_threshold
        )
        data = build_graph_data(new_netlist, features, dataset)
        return EcoAnalysis(
            netlist=new_netlist,
            eco=eco,
            features=features,
            dataset=dataset,
            data=data,
            classifier=self.classifier.transfer_to(data),
            regressor=self.regressor.transfer_to(data),
        )
