"""End-to-end pipeline (Figure 2): configuration and the
FaultCriticalityAnalyzer orchestrator."""

from repro.core.analyzer import (
    EcoAnalysis,
    FaultCriticalityAnalyzer,
    NodeReport,
)
from repro.core.config import AnalyzerConfig

__all__ = [
    "EcoAnalysis",
    "FaultCriticalityAnalyzer",
    "NodeReport",
    "AnalyzerConfig",
]
