"""Persistence for campaign results, datasets, and trained models.

Fault-injection campaigns are the expensive stage of the flow, so a
real deployment runs them once and reuses the results across modelling
sessions.  Everything serializes to numpy ``.npz`` archives (arrays)
with JSON-encoded metadata — no pickle, so archives are portable and
inspectable.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.fi.campaign import CampaignResult, WorkloadFailure
from repro.fi.dataset import CriticalityDataset
from repro.fi.faults import Fault
from repro.fi.transient import TransientFault
from repro.graph.data import GraphData
from repro.graph.split import Split
from repro.models.gcn import GCNClassifier, GCNRegressor
from repro.utils.errors import (
    CorruptArtifactError,
    ReproError,
    SerializationError,
)

PathLike = Union[str, Path]

#: Format version for workload checkpoints (bump on layout changes).
CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
# durable atomic writes
# ----------------------------------------------------------------------
def fsync_directory(directory: PathLike) -> None:
    """Flush a directory's entry table to stable storage.

    An ``os.replace`` is atomic against crashes of the *process*, but
    the new directory entry itself lives in the page cache until the
    directory inode is synced — a power cut after a "successful" rename
    can resurrect the old state.  Platforms whose directories cannot be
    opened for fsync (Windows) are skipped.
    """
    try:
        descriptor = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory semantics
        return
    try:
        os.fsync(descriptor)
    finally:
        os.close(descriptor)


def durable_replace(temporary: PathLike, path: PathLike) -> None:
    """Atomically publish ``temporary`` at ``path``, surviving power loss.

    ``temporary`` must already be synced (its *contents* are the
    caller's responsibility — sync the open handle before closing).
    This performs the rename and then fsyncs the parent directory so
    the publication itself is durable.
    """
    path = Path(path)
    os.replace(str(temporary), str(path))
    fsync_directory(path.parent)


def atomic_write_bytes(path: PathLike, payload: bytes) -> None:
    """Durably write ``payload`` to ``path`` via a synced temp file."""
    path = Path(path)
    temporary = path.with_name(path.name + f".tmp.{os.getpid()}")
    with open(temporary, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    durable_replace(temporary, path)


def atomic_write_text(path: PathLike, text: str) -> None:
    """Durably write ``text`` (UTF-8) to ``path`` via a synced temp file."""
    atomic_write_bytes(path, text.encode("utf-8"))


def _open_npz(path: PathLike, kind: str):
    """``np.load`` with corrupt/truncated files mapped to a typed error."""
    try:
        return np.load(path)
    except FileNotFoundError:
        raise
    except Exception as error:
        raise CorruptArtifactError(
            f"{kind} archive {path} is corrupt or not an .npz file: "
            f"{error}"
        ) from error


def _archive_array(archive, key: str, path: PathLike, kind: str,
                   dtype_kind: str) -> np.ndarray:
    """Fetch a required array, checking presence and dtype family."""
    if key not in archive.files:
        raise CorruptArtifactError(
            f"{kind} archive {path} is missing array {key!r} "
            "(truncated or written by an incompatible version?)"
        )
    array = archive[key]
    if array.dtype.kind not in dtype_kind:
        raise CorruptArtifactError(
            f"{kind} archive {path}: array {key!r} has dtype "
            f"{array.dtype}, expected kind {dtype_kind!r}"
        )
    return array


def _archive_metadata(archive, path: PathLike, kind: str,
                      required: tuple) -> dict:
    """Decode and sanity-check the JSON metadata blob."""
    if "metadata" not in archive.files:
        raise CorruptArtifactError(
            f"{kind} archive {path} has no metadata block"
        )
    try:
        metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CorruptArtifactError(
            f"{kind} archive {path}: metadata is not valid JSON "
            f"({error})"
        ) from error
    missing = [key for key in required if key not in metadata]
    if missing:
        raise CorruptArtifactError(
            f"{kind} archive {path}: metadata is missing "
            f"{', '.join(missing)}"
        )
    return metadata


# ----------------------------------------------------------------------
# campaigns
# ----------------------------------------------------------------------
def save_campaign(campaign: CampaignResult, path: PathLike) -> None:
    """Write a campaign result to an ``.npz`` archive."""
    first = campaign.faults[0]
    kind = "transient" if isinstance(first, TransientFault) else "stuck-at"
    metadata = {
        "netlist_name": campaign.netlist_name,
        "workload_names": campaign.workload_names,
        "severity": campaign.severity,
        "simulation_seconds": campaign.simulation_seconds,
        "fault_kind": kind,
        "fault_node_names": [fault.node_name for fault in campaign.faults],
        "failures": [
            {"workload": failure.workload, "status": failure.status,
             "attempts": failure.attempts,
             "elapsed_seconds": failure.elapsed_seconds,
             "error": failure.error}
            for failure in campaign.failures
        ],
    }
    extra = {}
    if kind == "stuck-at":
        extra["fault_values"] = np.array(
            [fault.stuck_at for fault in campaign.faults], dtype=np.int64
        )
    else:
        extra["fault_injection_cycles"] = np.array(
            [fault.cycle for fault in campaign.faults], dtype=np.int64
        )
    np.savez_compressed(
        path,
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
        fault_gate_index=np.array(
            [fault.gate_index for fault in campaign.faults],
            dtype=np.int64,
        ),
        fault_net_index=np.array(
            [fault.net_index for fault in campaign.faults],
            dtype=np.int64,
        ),
        workload_cycles=campaign.workload_cycles,
        error_cycles=campaign.error_cycles,
        detection_cycle=campaign.detection_cycle,
        latent=campaign.latent,
        **extra,
    )


def load_campaign(path: PathLike) -> CampaignResult:
    """Read a campaign result written by :func:`save_campaign`.

    The archive is validated before a :class:`CampaignResult` is built:
    required arrays and metadata keys must be present, matrices must
    agree with the fault list and workload list on shape, and dtypes
    must be of the expected families — a corrupt, truncated, or
    hand-edited archive raises :class:`SerializationError` instead of
    leaking a numpy/zipfile internal error.
    """
    with _open_npz(path, "campaign") as archive:
        metadata = _archive_metadata(
            archive, path, "campaign",
            required=("netlist_name", "workload_names", "severity",
                      "simulation_seconds", "fault_kind",
                      "fault_node_names"),
        )
        gate_index = _archive_array(archive, "fault_gate_index", path,
                                    "campaign", "iu")
        net_index = _archive_array(archive, "fault_net_index", path,
                                   "campaign", "iu")
        node_names = metadata["fault_node_names"]
        n_faults = len(node_names)
        if len(gate_index) != n_faults or len(net_index) != n_faults:
            raise SerializationError(
                f"campaign archive {path}: fault index arrays "
                f"({len(gate_index)}, {len(net_index)}) disagree with "
                f"{n_faults} fault node names"
            )
        if metadata["fault_kind"] == "stuck-at":
            values = _archive_array(archive, "fault_values", path,
                                    "campaign", "iu")
            if len(values) != n_faults:
                raise SerializationError(
                    f"campaign archive {path}: {len(values)} stuck-at "
                    f"values vs {n_faults} faults"
                )
            faults = [
                Fault(gate_index=int(g), net_index=int(n),
                      node_name=name, stuck_at=int(v))
                for g, n, name, v in zip(gate_index, net_index,
                                         node_names, values)
            ]
        elif metadata["fault_kind"] == "transient":
            cycles = _archive_array(archive, "fault_injection_cycles",
                                    path, "campaign", "iu")
            if len(cycles) != n_faults:
                raise SerializationError(
                    f"campaign archive {path}: {len(cycles)} injection "
                    f"cycles vs {n_faults} faults"
                )
            faults = [
                TransientFault(gate_index=int(g), net_index=int(n),
                               node_name=name, cycle=int(c))
                for g, n, name, c in zip(gate_index, net_index,
                                         node_names, cycles)
            ]
        else:
            raise SerializationError(
                f"campaign archive {path}: unknown fault kind "
                f"{metadata['fault_kind']!r}"
            )
        workload_names = list(metadata["workload_names"])
        workload_cycles = _archive_array(archive, "workload_cycles",
                                         path, "campaign", "iu")
        error_cycles = _archive_array(archive, "error_cycles", path,
                                      "campaign", "iu")
        detection_cycle = _archive_array(archive, "detection_cycle",
                                         path, "campaign", "iu")
        latent = _archive_array(archive, "latent", path, "campaign",
                                "b")
        expected = (len(workload_names), n_faults)
        for key, array in (("error_cycles", error_cycles),
                           ("detection_cycle", detection_cycle),
                           ("latent", latent)):
            if array.shape != expected:
                raise SerializationError(
                    f"campaign archive {path}: {key} has shape "
                    f"{array.shape}, expected {expected}"
                )
        if workload_cycles.shape != (len(workload_names),):
            raise SerializationError(
                f"campaign archive {path}: workload_cycles has shape "
                f"{workload_cycles.shape} for {len(workload_names)} "
                "workloads"
            )
        return CampaignResult(
            netlist_name=metadata["netlist_name"],
            faults=faults,
            workload_names=workload_names,
            workload_cycles=workload_cycles,
            error_cycles=error_cycles,
            detection_cycle=detection_cycle,
            latent=latent,
            severity=float(metadata["severity"]),
            simulation_seconds=float(metadata["simulation_seconds"]),
            failures=[
                WorkloadFailure(
                    workload=entry["workload"],
                    status=entry["status"],
                    attempts=int(entry["attempts"]),
                    elapsed_seconds=float(entry["elapsed_seconds"]),
                    error=entry["error"],
                )
                for entry in metadata.get("failures", ())
            ],
        )


# ----------------------------------------------------------------------
# workload checkpoints (resilient campaign runner)
# ----------------------------------------------------------------------
def save_workload_checkpoint(
    path: PathLike,
    *,
    fingerprint: str,
    workload_index: int,
    error_cycles: np.ndarray,
    detection_cycle: np.ndarray,
    latent: np.ndarray,
    elapsed_seconds: float,
) -> None:
    """Write one workload's completed fault pass to an ``.npz``.

    The write is atomic *and durable*: the temp file is fsynced before
    the rename and the parent directory after it, so a kill or power
    cut at any instant never leaves a half-checkpoint — or a vanished
    "successful" one — that a later ``--resume`` would trust.
    """
    path = Path(path)
    metadata = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "workload_index": workload_index,
        "elapsed_seconds": float(elapsed_seconds),
    }
    temporary = path.with_name(path.name + ".tmp")
    with open(temporary, "wb") as handle:
        np.savez_compressed(
            handle,
            metadata=np.frombuffer(
                json.dumps(metadata).encode("utf-8"), dtype=np.uint8
            ),
            error_cycles=np.asarray(error_cycles, dtype=np.int64),
            detection_cycle=np.asarray(detection_cycle,
                                       dtype=np.int64),
            latent=np.asarray(latent, dtype=bool),
        )
        handle.flush()
        os.fsync(handle.fileno())
    durable_replace(temporary, path)


def load_workload_checkpoint(
    path: PathLike,
    *,
    fingerprint: str,
    workload_index: int,
    n_faults: int,
) -> dict:
    """Read and validate one workload checkpoint.

    Raises :class:`SerializationError` when the file is corrupt, from
    an incompatible checkpoint format version, written for a different
    campaign (fingerprint mismatch), or carries arrays of the wrong
    shape — resuming silently from any of those would corrupt the
    campaign result.
    """
    with _open_npz(path, "checkpoint") as archive:
        metadata = _archive_metadata(
            archive, path, "checkpoint",
            required=("version", "fingerprint", "workload_index",
                      "elapsed_seconds"),
        )
        if metadata["version"] != CHECKPOINT_VERSION:
            raise SerializationError(
                f"checkpoint {path}: format version "
                f"{metadata['version']} (this build reads "
                f"{CHECKPOINT_VERSION})"
            )
        if metadata["fingerprint"] != fingerprint:
            raise SerializationError(
                f"checkpoint {path} was written for a different "
                "campaign configuration (fingerprint mismatch) — "
                "pass a fresh --checkpoint-dir or drop --resume"
            )
        if int(metadata["workload_index"]) != workload_index:
            raise SerializationError(
                f"checkpoint {path}: stored workload index "
                f"{metadata['workload_index']}, expected "
                f"{workload_index}"
            )
        arrays = {}
        for key, dtype_kind in (("error_cycles", "iu"),
                                ("detection_cycle", "iu"),
                                ("latent", "b")):
            array = _archive_array(archive, key, path, "checkpoint",
                                   dtype_kind)
            if array.shape != (n_faults,):
                raise CorruptArtifactError(
                    f"checkpoint {path}: {key} has shape "
                    f"{array.shape}, expected ({n_faults},)"
                )
            arrays[key] = array
        arrays["elapsed_seconds"] = float(metadata["elapsed_seconds"])
        return arrays


# ----------------------------------------------------------------------
# datasets
# ----------------------------------------------------------------------
def save_dataset(dataset: CriticalityDataset, path: PathLike) -> None:
    """Write an Algorithm 1 dataset to JSON."""
    trials = (
        dataset.trials.tolist() if dataset.trials is not None
        else [None] * dataset.n_nodes
    )
    payload = {
        "design": dataset.design,
        "threshold": dataset.threshold,
        "n_workloads": dataset.n_workloads,
        "nodes": [
            {"name": name, "score": float(score), "label": int(label),
             "trials": trial}
            for name, score, label, trial in zip(
                dataset.node_names, dataset.scores, dataset.labels,
                trials,
            )
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1),
                          encoding="utf-8")


def load_dataset(path: PathLike) -> CriticalityDataset:
    """Read a dataset written by :func:`save_dataset`.

    Corrupt JSON, missing keys, or malformed node rows raise
    :class:`SerializationError` with the offending detail rather than a
    bare ``KeyError``/``JSONDecodeError``.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SerializationError(
            f"dataset file {path} is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise SerializationError(
            f"dataset file {path}: top level must be an object, got "
            f"{type(payload).__name__}"
        )
    missing = [key for key in ("design", "threshold", "n_workloads",
                               "nodes") if key not in payload]
    if missing:
        raise SerializationError(
            f"dataset file {path} is missing {', '.join(missing)}"
        )
    nodes = payload["nodes"]
    if not isinstance(nodes, list):
        raise SerializationError(
            f"dataset file {path}: 'nodes' must be a list"
        )
    for index, node in enumerate(nodes):
        if not isinstance(node, dict) or not {
            "name", "score", "label"
        } <= node.keys():
            raise SerializationError(
                f"dataset file {path}: node row {index} must carry "
                "name/score/label"
            )
    trial_values = [node.get("trials") for node in nodes]
    trials = (
        np.array(trial_values)
        if all(value is not None for value in trial_values)
        else None
    )
    return CriticalityDataset(
        design=payload["design"],
        node_names=[node["name"] for node in nodes],
        scores=np.array([node["score"] for node in nodes]),
        labels=np.array([node["label"] for node in nodes]),
        threshold=float(payload["threshold"]),
        n_workloads=int(payload["n_workloads"]),
        trials=trials,
    )


# ----------------------------------------------------------------------
# trained GCN weights
# ----------------------------------------------------------------------
def save_gcn(model, path: PathLike) -> None:
    """Write a fitted GCN classifier/regressor's weights and
    architecture to an ``.npz`` archive."""
    if model.model is None:
        raise ReproError("cannot save an unfitted model")
    metadata = {
        "kind": "regressor" if isinstance(model, GCNRegressor)
        else "classifier",
        "hidden_dims": list(model.hidden_dims),
        "dropout": model.dropout,
        "adjacency_mode": model.adjacency_mode,
        "self_loops": model.self_loops,
        "conv": getattr(model, "conv", "gcn"),
    }
    arrays = {
        f"parameter_{index}": parameter.value
        for index, parameter in enumerate(model.model.parameters())
    }
    np.savez_compressed(
        path,
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
        **arrays,
    )


def load_gcn(path: PathLike, data: GraphData):
    """Rebuild a fitted GCN against ``data``'s graph and features.

    The model is reconstructed with the stored architecture, bound to
    the design's propagation matrix, and its weights restored — ready
    for :meth:`predict` without retraining.
    """
    from repro.models.gcn import build_gcn_stack

    with np.load(path) as archive:
        metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
        weights = [
            archive[f"parameter_{index}"]
            for index in range(
                sum(1 for key in archive.files
                    if key.startswith("parameter_"))
            )
        ]

    conv = metadata.get("conv", "gcn")
    if metadata["kind"] == "regressor":
        model = GCNRegressor(
            hidden_dims=tuple(metadata["hidden_dims"]),
            dropout=float(metadata["dropout"]),
            adjacency_mode=metadata["adjacency_mode"],
            self_loops=bool(metadata["self_loops"]),
        )
    else:
        model = GCNClassifier(
            hidden_dims=tuple(metadata["hidden_dims"]),
            dropout=float(metadata["dropout"]),
            adjacency_mode=metadata["adjacency_mode"],
            self_loops=bool(metadata["self_loops"]),
            conv=conv,
        )
    a_norm = data.a_norm(model.adjacency_mode, model.self_loops)
    model.model = build_gcn_stack(
        data.n_features,
        1 if metadata["kind"] == "regressor" else 2,
        a_norm,
        hidden_dims=model.hidden_dims,
        dropout=model.dropout,
        log_softmax=metadata["kind"] != "regressor",
        conv=conv,
    )
    parameters = model.model.parameters()
    if len(parameters) != len(weights):
        raise ReproError(
            "stored weights do not match the reconstructed architecture"
        )
    for parameter, value in zip(parameters, weights):
        if parameter.value.shape != value.shape:
            raise ReproError(
                f"weight shape mismatch: {parameter.value.shape} vs "
                f"{value.shape} (was the model trained on different "
                "features?)"
            )
        parameter.value[:] = value
    model._data = data  # noqa: SLF001 — bind for parameterless predict
    model.model.eval()
    return model


# ----------------------------------------------------------------------
# splits
# ----------------------------------------------------------------------
def save_split(split: Split, path: PathLike) -> None:
    """Write a train/validation split to ``.npz``."""
    np.savez_compressed(path, train_mask=split.train_mask,
                        val_mask=split.val_mask)


def load_split(path: PathLike) -> Split:
    """Read a split written by :func:`save_split`."""
    with np.load(path) as archive:
        return Split(train_mask=archive["train_mask"],
                     val_mask=archive["val_mask"])


# ----------------------------------------------------------------------
# node features
# ----------------------------------------------------------------------
def save_features(features, path: PathLike) -> None:
    """Write a :class:`~repro.features.extract.NodeFeatures` to ``.npz``."""
    metadata = {
        "design": features.design,
        "node_names": list(features.node_names),
        "feature_names": list(features.feature_names),
    }
    np.savez_compressed(
        path,
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
        matrix=np.asarray(features.matrix, dtype=np.float64),
    )


def load_features(path: PathLike):
    """Read features written by :func:`save_features` (validated)."""
    from repro.features.extract import NodeFeatures

    with _open_npz(path, "features") as archive:
        metadata = _archive_metadata(
            archive, path, "features",
            required=("design", "node_names", "feature_names"),
        )
        matrix = _archive_array(archive, "matrix", path, "features", "f")
        expected = (len(metadata["node_names"]),
                    len(metadata["feature_names"]))
        if matrix.shape != expected:
            raise SerializationError(
                f"features archive {path}: matrix has shape "
                f"{matrix.shape}, expected {expected}"
            )
        return NodeFeatures(
            design=metadata["design"],
            node_names=list(metadata["node_names"]),
            feature_names=list(metadata["feature_names"]),
            matrix=matrix,
        )


# ----------------------------------------------------------------------
# workload suites
# ----------------------------------------------------------------------
def save_workloads(workloads, path: PathLike) -> None:
    """Write a workload suite (replayable stimulus vectors) to ``.npz``."""
    metadata = {
        "workloads": [
            {"name": workload.name,
             "input_names": list(workload.input_names)}
            for workload in workloads
        ],
    }
    arrays = {
        f"vectors_{index}": np.asarray(workload.vectors,
                                       dtype=np.uint8)
        for index, workload in enumerate(workloads)
    }
    np.savez_compressed(
        path,
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
        **arrays,
    )


def load_workloads(path: PathLike):
    """Read a suite written by :func:`save_workloads` (validated)."""
    from repro.sim.waveform import Workload

    with _open_npz(path, "workloads") as archive:
        metadata = _archive_metadata(
            archive, path, "workloads", required=("workloads",)
        )
        suite = []
        for index, entry in enumerate(metadata["workloads"]):
            vectors = _archive_array(
                archive, f"vectors_{index}", path, "workloads", "u"
            )
            if vectors.ndim != 2 or \
                    vectors.shape[1] != len(entry["input_names"]):
                raise SerializationError(
                    f"workloads archive {path}: vectors_{index} has "
                    f"shape {vectors.shape}, expected (*, "
                    f"{len(entry['input_names'])})"
                )
            suite.append(Workload(
                name=entry["name"],
                input_names=list(entry["input_names"]),
                vectors=vectors,
            ))
        return suite


# ----------------------------------------------------------------------
# graph data
# ----------------------------------------------------------------------
def save_graph_data(data: GraphData, path: PathLike) -> None:
    """Write a :class:`~repro.graph.data.GraphData` to ``.npz``."""
    metadata = {
        "design": data.design,
        "node_names": list(data.node_names),
        "feature_names": list(data.feature_names),
    }
    np.savez_compressed(
        path,
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
        x=data.x,
        x_raw=data.x_raw,
        edge_index=np.asarray(data.edge_index, dtype=np.int64),
        y_class=data.y_class,
        y_score=data.y_score,
    )


def load_graph_data(path: PathLike) -> GraphData:
    """Read graph data written by :func:`save_graph_data` (validated)."""
    with _open_npz(path, "graph-data") as archive:
        metadata = _archive_metadata(
            archive, path, "graph-data",
            required=("design", "node_names", "feature_names"),
        )
        x = _archive_array(archive, "x", path, "graph-data", "f")
        x_raw = _archive_array(archive, "x_raw", path, "graph-data", "f")
        edge_index = _archive_array(archive, "edge_index", path,
                                    "graph-data", "iu")
        y_class = _archive_array(archive, "y_class", path, "graph-data",
                                 "iu")
        y_score = _archive_array(archive, "y_score", path, "graph-data",
                                 "f")
        n_nodes = len(metadata["node_names"])
        expected = (n_nodes, len(metadata["feature_names"]))
        if x.shape != expected or x_raw.shape != expected:
            raise SerializationError(
                f"graph-data archive {path}: feature matrices "
                f"{x.shape}/{x_raw.shape} disagree with {expected}"
            )
        if edge_index.ndim != 2 or edge_index.shape[0] != 2:
            raise SerializationError(
                f"graph-data archive {path}: edge_index has shape "
                f"{edge_index.shape}, expected (2, E)"
            )
        if y_class.shape != (n_nodes,) or y_score.shape != (n_nodes,):
            raise SerializationError(
                f"graph-data archive {path}: label vectors "
                f"{y_class.shape}/{y_score.shape} disagree with "
                f"({n_nodes},)"
            )
        return GraphData(
            design=metadata["design"],
            node_names=list(metadata["node_names"]),
            x=x,
            x_raw=x_raw,
            edge_index=edge_index,
            y_class=y_class,
            y_score=y_score,
            feature_names=list(metadata["feature_names"]),
        )


# ----------------------------------------------------------------------
# explanation reports
# ----------------------------------------------------------------------
def save_explanations(explanations: List, path: PathLike) -> None:
    """Write GNNExplainer reports to one ``.npz``.

    Ragged per-node payloads (subgraph node lists, edge-importance
    triples) are stored concatenated with an ``indptr`` offset table —
    the CSR trick — so the archive stays a flat set of typed arrays.
    """
    metadata = {
        "node_names": [e.node_name for e in explanations],
        "node_indices": [int(e.node_index) for e in explanations],
        "predicted_classes": [
            int(e.predicted_class) for e in explanations
        ],
        "feature_names": (
            list(explanations[0].feature_names) if explanations else []
        ),
    }
    n = len(explanations)
    feature_scores = (
        np.stack([e.feature_scores for e in explanations])
        if explanations else np.zeros((0, 0))
    )
    node_indptr = np.zeros(n + 1, dtype=np.int64)
    edge_indptr = np.zeros(n + 1, dtype=np.int64)
    for i, e in enumerate(explanations):
        node_indptr[i + 1] = node_indptr[i] + len(e.subgraph_nodes)
        edge_indptr[i + 1] = edge_indptr[i] + len(e.edge_importance)
    subgraph_nodes = np.concatenate(
        [np.asarray(e.subgraph_nodes, dtype=np.int64)
         for e in explanations]
    ) if n and node_indptr[-1] else np.zeros(0, dtype=np.int64)
    edge_ends = np.zeros((int(edge_indptr[-1]), 2), dtype=np.int64)
    edge_weights = np.zeros(int(edge_indptr[-1]), dtype=np.float64)
    for i, e in enumerate(explanations):
        lo, hi = int(edge_indptr[i]), int(edge_indptr[i + 1])
        for j, (source, target, weight) in enumerate(e.edge_importance):
            edge_ends[lo + j] = (source, target)
            edge_weights[lo + j] = weight
    np.savez_compressed(
        path,
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
        feature_scores=np.asarray(feature_scores, dtype=np.float64),
        node_indptr=node_indptr,
        subgraph_nodes=subgraph_nodes,
        edge_indptr=edge_indptr,
        edge_ends=edge_ends,
        edge_weights=edge_weights,
    )


def load_explanations(path: PathLike) -> List:
    """Read reports written by :func:`save_explanations` (validated)."""
    from repro.explain.gnn_explainer import Explanation

    with _open_npz(path, "explanations") as archive:
        metadata = _archive_metadata(
            archive, path, "explanations",
            required=("node_names", "node_indices",
                      "predicted_classes", "feature_names"),
        )
        names = metadata["node_names"]
        n = len(names)
        scores = _archive_array(archive, "feature_scores", path,
                                "explanations", "f")
        node_indptr = _archive_array(archive, "node_indptr", path,
                                     "explanations", "iu")
        subgraph_nodes = _archive_array(archive, "subgraph_nodes", path,
                                        "explanations", "iu")
        edge_indptr = _archive_array(archive, "edge_indptr", path,
                                     "explanations", "iu")
        edge_ends = _archive_array(archive, "edge_ends", path,
                                   "explanations", "iu")
        edge_weights = _archive_array(archive, "edge_weights", path,
                                      "explanations", "f")
        if (len(node_indptr) != n + 1 or len(edge_indptr) != n + 1
                or (n and scores.shape[0] != n)):
            raise SerializationError(
                f"explanations archive {path}: offset tables disagree "
                f"with {n} explanations"
            )
        if (int(node_indptr[-1]) != len(subgraph_nodes)
                or int(edge_indptr[-1]) != len(edge_weights)
                or edge_ends.shape != (len(edge_weights), 2)):
            raise SerializationError(
                f"explanations archive {path}: ragged payloads are "
                "truncated"
            )
        explanations = []
        for i in range(n):
            node_lo, node_hi = int(node_indptr[i]), int(node_indptr[i + 1])
            edge_lo, edge_hi = int(edge_indptr[i]), int(edge_indptr[i + 1])
            explanations.append(Explanation(
                node_name=names[i],
                node_index=int(metadata["node_indices"][i]),
                predicted_class=int(metadata["predicted_classes"][i]),
                feature_names=list(metadata["feature_names"]),
                feature_scores=scores[i],
                subgraph_nodes=[
                    int(v) for v in subgraph_nodes[node_lo:node_hi]
                ],
                edge_importance=[
                    (int(edge_ends[j, 0]), int(edge_ends[j, 1]),
                     float(edge_weights[j]))
                    for j in range(edge_lo, edge_hi)
                ],
            ))
        return explanations
