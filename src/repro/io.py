"""Persistence for campaign results, datasets, and trained models.

Fault-injection campaigns are the expensive stage of the flow, so a
real deployment runs them once and reuses the results across modelling
sessions.  Everything serializes to numpy ``.npz`` archives (arrays)
with JSON-encoded metadata — no pickle, so archives are portable and
inspectable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.fi.campaign import CampaignResult, WorkloadFailure
from repro.fi.dataset import CriticalityDataset
from repro.fi.faults import Fault
from repro.fi.transient import TransientFault
from repro.graph.data import GraphData
from repro.graph.split import Split
from repro.models.gcn import GCNClassifier, GCNRegressor
from repro.utils.errors import (
    CorruptArtifactError,
    ReproError,
    SerializationError,
)

PathLike = Union[str, Path]

#: Format version for workload checkpoints (bump on layout changes).
CHECKPOINT_VERSION = 1


def _open_npz(path: PathLike, kind: str):
    """``np.load`` with corrupt/truncated files mapped to a typed error."""
    try:
        return np.load(path)
    except FileNotFoundError:
        raise
    except Exception as error:
        raise CorruptArtifactError(
            f"{kind} archive {path} is corrupt or not an .npz file: "
            f"{error}"
        ) from error


def _archive_array(archive, key: str, path: PathLike, kind: str,
                   dtype_kind: str) -> np.ndarray:
    """Fetch a required array, checking presence and dtype family."""
    if key not in archive.files:
        raise CorruptArtifactError(
            f"{kind} archive {path} is missing array {key!r} "
            "(truncated or written by an incompatible version?)"
        )
    array = archive[key]
    if array.dtype.kind not in dtype_kind:
        raise CorruptArtifactError(
            f"{kind} archive {path}: array {key!r} has dtype "
            f"{array.dtype}, expected kind {dtype_kind!r}"
        )
    return array


def _archive_metadata(archive, path: PathLike, kind: str,
                      required: tuple) -> dict:
    """Decode and sanity-check the JSON metadata blob."""
    if "metadata" not in archive.files:
        raise CorruptArtifactError(
            f"{kind} archive {path} has no metadata block"
        )
    try:
        metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CorruptArtifactError(
            f"{kind} archive {path}: metadata is not valid JSON "
            f"({error})"
        ) from error
    missing = [key for key in required if key not in metadata]
    if missing:
        raise CorruptArtifactError(
            f"{kind} archive {path}: metadata is missing "
            f"{', '.join(missing)}"
        )
    return metadata


# ----------------------------------------------------------------------
# campaigns
# ----------------------------------------------------------------------
def save_campaign(campaign: CampaignResult, path: PathLike) -> None:
    """Write a campaign result to an ``.npz`` archive."""
    first = campaign.faults[0]
    kind = "transient" if isinstance(first, TransientFault) else "stuck-at"
    metadata = {
        "netlist_name": campaign.netlist_name,
        "workload_names": campaign.workload_names,
        "severity": campaign.severity,
        "simulation_seconds": campaign.simulation_seconds,
        "fault_kind": kind,
        "fault_node_names": [fault.node_name for fault in campaign.faults],
        "failures": [
            {"workload": failure.workload, "status": failure.status,
             "attempts": failure.attempts,
             "elapsed_seconds": failure.elapsed_seconds,
             "error": failure.error}
            for failure in campaign.failures
        ],
    }
    extra = {}
    if kind == "stuck-at":
        extra["fault_values"] = np.array(
            [fault.stuck_at for fault in campaign.faults], dtype=np.int64
        )
    else:
        extra["fault_injection_cycles"] = np.array(
            [fault.cycle for fault in campaign.faults], dtype=np.int64
        )
    np.savez_compressed(
        path,
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
        fault_gate_index=np.array(
            [fault.gate_index for fault in campaign.faults],
            dtype=np.int64,
        ),
        fault_net_index=np.array(
            [fault.net_index for fault in campaign.faults],
            dtype=np.int64,
        ),
        workload_cycles=campaign.workload_cycles,
        error_cycles=campaign.error_cycles,
        detection_cycle=campaign.detection_cycle,
        latent=campaign.latent,
        **extra,
    )


def load_campaign(path: PathLike) -> CampaignResult:
    """Read a campaign result written by :func:`save_campaign`.

    The archive is validated before a :class:`CampaignResult` is built:
    required arrays and metadata keys must be present, matrices must
    agree with the fault list and workload list on shape, and dtypes
    must be of the expected families — a corrupt, truncated, or
    hand-edited archive raises :class:`SerializationError` instead of
    leaking a numpy/zipfile internal error.
    """
    with _open_npz(path, "campaign") as archive:
        metadata = _archive_metadata(
            archive, path, "campaign",
            required=("netlist_name", "workload_names", "severity",
                      "simulation_seconds", "fault_kind",
                      "fault_node_names"),
        )
        gate_index = _archive_array(archive, "fault_gate_index", path,
                                    "campaign", "iu")
        net_index = _archive_array(archive, "fault_net_index", path,
                                   "campaign", "iu")
        node_names = metadata["fault_node_names"]
        n_faults = len(node_names)
        if len(gate_index) != n_faults or len(net_index) != n_faults:
            raise SerializationError(
                f"campaign archive {path}: fault index arrays "
                f"({len(gate_index)}, {len(net_index)}) disagree with "
                f"{n_faults} fault node names"
            )
        if metadata["fault_kind"] == "stuck-at":
            values = _archive_array(archive, "fault_values", path,
                                    "campaign", "iu")
            if len(values) != n_faults:
                raise SerializationError(
                    f"campaign archive {path}: {len(values)} stuck-at "
                    f"values vs {n_faults} faults"
                )
            faults = [
                Fault(gate_index=int(g), net_index=int(n),
                      node_name=name, stuck_at=int(v))
                for g, n, name, v in zip(gate_index, net_index,
                                         node_names, values)
            ]
        elif metadata["fault_kind"] == "transient":
            cycles = _archive_array(archive, "fault_injection_cycles",
                                    path, "campaign", "iu")
            if len(cycles) != n_faults:
                raise SerializationError(
                    f"campaign archive {path}: {len(cycles)} injection "
                    f"cycles vs {n_faults} faults"
                )
            faults = [
                TransientFault(gate_index=int(g), net_index=int(n),
                               node_name=name, cycle=int(c))
                for g, n, name, c in zip(gate_index, net_index,
                                         node_names, cycles)
            ]
        else:
            raise SerializationError(
                f"campaign archive {path}: unknown fault kind "
                f"{metadata['fault_kind']!r}"
            )
        workload_names = list(metadata["workload_names"])
        workload_cycles = _archive_array(archive, "workload_cycles",
                                         path, "campaign", "iu")
        error_cycles = _archive_array(archive, "error_cycles", path,
                                      "campaign", "iu")
        detection_cycle = _archive_array(archive, "detection_cycle",
                                         path, "campaign", "iu")
        latent = _archive_array(archive, "latent", path, "campaign",
                                "b")
        expected = (len(workload_names), n_faults)
        for key, array in (("error_cycles", error_cycles),
                           ("detection_cycle", detection_cycle),
                           ("latent", latent)):
            if array.shape != expected:
                raise SerializationError(
                    f"campaign archive {path}: {key} has shape "
                    f"{array.shape}, expected {expected}"
                )
        if workload_cycles.shape != (len(workload_names),):
            raise SerializationError(
                f"campaign archive {path}: workload_cycles has shape "
                f"{workload_cycles.shape} for {len(workload_names)} "
                "workloads"
            )
        return CampaignResult(
            netlist_name=metadata["netlist_name"],
            faults=faults,
            workload_names=workload_names,
            workload_cycles=workload_cycles,
            error_cycles=error_cycles,
            detection_cycle=detection_cycle,
            latent=latent,
            severity=float(metadata["severity"]),
            simulation_seconds=float(metadata["simulation_seconds"]),
            failures=[
                WorkloadFailure(
                    workload=entry["workload"],
                    status=entry["status"],
                    attempts=int(entry["attempts"]),
                    elapsed_seconds=float(entry["elapsed_seconds"]),
                    error=entry["error"],
                )
                for entry in metadata.get("failures", ())
            ],
        )


# ----------------------------------------------------------------------
# workload checkpoints (resilient campaign runner)
# ----------------------------------------------------------------------
def save_workload_checkpoint(
    path: PathLike,
    *,
    fingerprint: str,
    workload_index: int,
    error_cycles: np.ndarray,
    detection_cycle: np.ndarray,
    latent: np.ndarray,
    elapsed_seconds: float,
) -> None:
    """Write one workload's completed fault pass to an ``.npz``.

    The write is atomic (temp file + rename) so a kill mid-write never
    leaves a half-checkpoint that a later ``--resume`` would trust.
    """
    path = Path(path)
    metadata = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "workload_index": workload_index,
        "elapsed_seconds": float(elapsed_seconds),
    }
    temporary = path.with_name(path.name + ".tmp")
    with open(temporary, "wb") as handle:
        np.savez_compressed(
            handle,
            metadata=np.frombuffer(
                json.dumps(metadata).encode("utf-8"), dtype=np.uint8
            ),
            error_cycles=np.asarray(error_cycles, dtype=np.int64),
            detection_cycle=np.asarray(detection_cycle,
                                       dtype=np.int64),
            latent=np.asarray(latent, dtype=bool),
        )
    temporary.replace(path)


def load_workload_checkpoint(
    path: PathLike,
    *,
    fingerprint: str,
    workload_index: int,
    n_faults: int,
) -> dict:
    """Read and validate one workload checkpoint.

    Raises :class:`SerializationError` when the file is corrupt, from
    an incompatible checkpoint format version, written for a different
    campaign (fingerprint mismatch), or carries arrays of the wrong
    shape — resuming silently from any of those would corrupt the
    campaign result.
    """
    with _open_npz(path, "checkpoint") as archive:
        metadata = _archive_metadata(
            archive, path, "checkpoint",
            required=("version", "fingerprint", "workload_index",
                      "elapsed_seconds"),
        )
        if metadata["version"] != CHECKPOINT_VERSION:
            raise SerializationError(
                f"checkpoint {path}: format version "
                f"{metadata['version']} (this build reads "
                f"{CHECKPOINT_VERSION})"
            )
        if metadata["fingerprint"] != fingerprint:
            raise SerializationError(
                f"checkpoint {path} was written for a different "
                "campaign configuration (fingerprint mismatch) — "
                "pass a fresh --checkpoint-dir or drop --resume"
            )
        if int(metadata["workload_index"]) != workload_index:
            raise SerializationError(
                f"checkpoint {path}: stored workload index "
                f"{metadata['workload_index']}, expected "
                f"{workload_index}"
            )
        arrays = {}
        for key, dtype_kind in (("error_cycles", "iu"),
                                ("detection_cycle", "iu"),
                                ("latent", "b")):
            array = _archive_array(archive, key, path, "checkpoint",
                                   dtype_kind)
            if array.shape != (n_faults,):
                raise CorruptArtifactError(
                    f"checkpoint {path}: {key} has shape "
                    f"{array.shape}, expected ({n_faults},)"
                )
            arrays[key] = array
        arrays["elapsed_seconds"] = float(metadata["elapsed_seconds"])
        return arrays


# ----------------------------------------------------------------------
# datasets
# ----------------------------------------------------------------------
def save_dataset(dataset: CriticalityDataset, path: PathLike) -> None:
    """Write an Algorithm 1 dataset to JSON."""
    trials = (
        dataset.trials.tolist() if dataset.trials is not None
        else [None] * dataset.n_nodes
    )
    payload = {
        "design": dataset.design,
        "threshold": dataset.threshold,
        "n_workloads": dataset.n_workloads,
        "nodes": [
            {"name": name, "score": float(score), "label": int(label),
             "trials": trial}
            for name, score, label, trial in zip(
                dataset.node_names, dataset.scores, dataset.labels,
                trials,
            )
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1),
                          encoding="utf-8")


def load_dataset(path: PathLike) -> CriticalityDataset:
    """Read a dataset written by :func:`save_dataset`.

    Corrupt JSON, missing keys, or malformed node rows raise
    :class:`SerializationError` with the offending detail rather than a
    bare ``KeyError``/``JSONDecodeError``.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SerializationError(
            f"dataset file {path} is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise SerializationError(
            f"dataset file {path}: top level must be an object, got "
            f"{type(payload).__name__}"
        )
    missing = [key for key in ("design", "threshold", "n_workloads",
                               "nodes") if key not in payload]
    if missing:
        raise SerializationError(
            f"dataset file {path} is missing {', '.join(missing)}"
        )
    nodes = payload["nodes"]
    if not isinstance(nodes, list):
        raise SerializationError(
            f"dataset file {path}: 'nodes' must be a list"
        )
    for index, node in enumerate(nodes):
        if not isinstance(node, dict) or not {
            "name", "score", "label"
        } <= node.keys():
            raise SerializationError(
                f"dataset file {path}: node row {index} must carry "
                "name/score/label"
            )
    trial_values = [node.get("trials") for node in nodes]
    trials = (
        np.array(trial_values)
        if all(value is not None for value in trial_values)
        else None
    )
    return CriticalityDataset(
        design=payload["design"],
        node_names=[node["name"] for node in nodes],
        scores=np.array([node["score"] for node in nodes]),
        labels=np.array([node["label"] for node in nodes]),
        threshold=float(payload["threshold"]),
        n_workloads=int(payload["n_workloads"]),
        trials=trials,
    )


# ----------------------------------------------------------------------
# trained GCN weights
# ----------------------------------------------------------------------
def save_gcn(model, path: PathLike) -> None:
    """Write a fitted GCN classifier/regressor's weights and
    architecture to an ``.npz`` archive."""
    if model.model is None:
        raise ReproError("cannot save an unfitted model")
    metadata = {
        "kind": "regressor" if isinstance(model, GCNRegressor)
        else "classifier",
        "hidden_dims": list(model.hidden_dims),
        "dropout": model.dropout,
        "adjacency_mode": model.adjacency_mode,
        "self_loops": model.self_loops,
        "conv": getattr(model, "conv", "gcn"),
    }
    arrays = {
        f"parameter_{index}": parameter.value
        for index, parameter in enumerate(model.model.parameters())
    }
    np.savez_compressed(
        path,
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
        **arrays,
    )


def load_gcn(path: PathLike, data: GraphData):
    """Rebuild a fitted GCN against ``data``'s graph and features.

    The model is reconstructed with the stored architecture, bound to
    the design's propagation matrix, and its weights restored — ready
    for :meth:`predict` without retraining.
    """
    from repro.models.gcn import build_gcn_stack

    with np.load(path) as archive:
        metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
        weights = [
            archive[f"parameter_{index}"]
            for index in range(
                sum(1 for key in archive.files
                    if key.startswith("parameter_"))
            )
        ]

    conv = metadata.get("conv", "gcn")
    if metadata["kind"] == "regressor":
        model = GCNRegressor(
            hidden_dims=tuple(metadata["hidden_dims"]),
            dropout=float(metadata["dropout"]),
            adjacency_mode=metadata["adjacency_mode"],
            self_loops=bool(metadata["self_loops"]),
        )
    else:
        model = GCNClassifier(
            hidden_dims=tuple(metadata["hidden_dims"]),
            dropout=float(metadata["dropout"]),
            adjacency_mode=metadata["adjacency_mode"],
            self_loops=bool(metadata["self_loops"]),
            conv=conv,
        )
    a_norm = data.a_norm(model.adjacency_mode, model.self_loops)
    model.model = build_gcn_stack(
        data.n_features,
        1 if metadata["kind"] == "regressor" else 2,
        a_norm,
        hidden_dims=model.hidden_dims,
        dropout=model.dropout,
        log_softmax=metadata["kind"] != "regressor",
        conv=conv,
    )
    parameters = model.model.parameters()
    if len(parameters) != len(weights):
        raise ReproError(
            "stored weights do not match the reconstructed architecture"
        )
    for parameter, value in zip(parameters, weights):
        if parameter.value.shape != value.shape:
            raise ReproError(
                f"weight shape mismatch: {parameter.value.shape} vs "
                f"{value.shape} (was the model trained on different "
                "features?)"
            )
        parameter.value[:] = value
    model._data = data  # noqa: SLF001 — bind for parameterless predict
    model.model.eval()
    return model


# ----------------------------------------------------------------------
# splits
# ----------------------------------------------------------------------
def save_split(split: Split, path: PathLike) -> None:
    """Write a train/validation split to ``.npz``."""
    np.savez_compressed(path, train_mask=split.train_mask,
                        val_mask=split.val_mask)


def load_split(path: PathLike) -> Split:
    """Read a split written by :func:`save_split`."""
    with np.load(path) as archive:
        return Split(train_mask=archive["train_mask"],
                     val_mask=archive["val_mask"])
