"""Persistence for campaign results, datasets, and trained models.

Fault-injection campaigns are the expensive stage of the flow, so a
real deployment runs them once and reuses the results across modelling
sessions.  Everything serializes to numpy ``.npz`` archives (arrays)
with JSON-encoded metadata — no pickle, so archives are portable and
inspectable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.fi.campaign import CampaignResult
from repro.fi.dataset import CriticalityDataset
from repro.fi.faults import Fault
from repro.fi.transient import TransientFault
from repro.graph.data import GraphData
from repro.graph.split import Split
from repro.models.gcn import GCNClassifier, GCNRegressor
from repro.utils.errors import ReproError

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# campaigns
# ----------------------------------------------------------------------
def save_campaign(campaign: CampaignResult, path: PathLike) -> None:
    """Write a campaign result to an ``.npz`` archive."""
    first = campaign.faults[0]
    kind = "transient" if isinstance(first, TransientFault) else "stuck-at"
    metadata = {
        "netlist_name": campaign.netlist_name,
        "workload_names": campaign.workload_names,
        "severity": campaign.severity,
        "simulation_seconds": campaign.simulation_seconds,
        "fault_kind": kind,
        "fault_node_names": [fault.node_name for fault in campaign.faults],
    }
    extra = {}
    if kind == "stuck-at":
        extra["fault_values"] = np.array(
            [fault.stuck_at for fault in campaign.faults], dtype=np.int64
        )
    else:
        extra["fault_injection_cycles"] = np.array(
            [fault.cycle for fault in campaign.faults], dtype=np.int64
        )
    np.savez_compressed(
        path,
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
        fault_gate_index=np.array(
            [fault.gate_index for fault in campaign.faults],
            dtype=np.int64,
        ),
        fault_net_index=np.array(
            [fault.net_index for fault in campaign.faults],
            dtype=np.int64,
        ),
        workload_cycles=campaign.workload_cycles,
        error_cycles=campaign.error_cycles,
        detection_cycle=campaign.detection_cycle,
        latent=campaign.latent,
        **extra,
    )


def load_campaign(path: PathLike) -> CampaignResult:
    """Read a campaign result written by :func:`save_campaign`."""
    with np.load(path) as archive:
        metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
        gate_index = archive["fault_gate_index"]
        net_index = archive["fault_net_index"]
        node_names = metadata["fault_node_names"]
        if metadata["fault_kind"] == "stuck-at":
            values = archive["fault_values"]
            faults = [
                Fault(gate_index=int(g), net_index=int(n),
                      node_name=name, stuck_at=int(v))
                for g, n, name, v in zip(gate_index, net_index,
                                         node_names, values)
            ]
        else:
            cycles = archive["fault_injection_cycles"]
            faults = [
                TransientFault(gate_index=int(g), net_index=int(n),
                               node_name=name, cycle=int(c))
                for g, n, name, c in zip(gate_index, net_index,
                                         node_names, cycles)
            ]
        return CampaignResult(
            netlist_name=metadata["netlist_name"],
            faults=faults,
            workload_names=list(metadata["workload_names"]),
            workload_cycles=archive["workload_cycles"],
            error_cycles=archive["error_cycles"],
            detection_cycle=archive["detection_cycle"],
            latent=archive["latent"],
            severity=float(metadata["severity"]),
            simulation_seconds=float(metadata["simulation_seconds"]),
        )


# ----------------------------------------------------------------------
# datasets
# ----------------------------------------------------------------------
def save_dataset(dataset: CriticalityDataset, path: PathLike) -> None:
    """Write an Algorithm 1 dataset to JSON."""
    trials = (
        dataset.trials.tolist() if dataset.trials is not None
        else [None] * dataset.n_nodes
    )
    payload = {
        "design": dataset.design,
        "threshold": dataset.threshold,
        "n_workloads": dataset.n_workloads,
        "nodes": [
            {"name": name, "score": float(score), "label": int(label),
             "trials": trial}
            for name, score, label, trial in zip(
                dataset.node_names, dataset.scores, dataset.labels,
                trials,
            )
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1),
                          encoding="utf-8")


def load_dataset(path: PathLike) -> CriticalityDataset:
    """Read a dataset written by :func:`save_dataset`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    nodes = payload["nodes"]
    trial_values = [node.get("trials") for node in nodes]
    trials = (
        np.array(trial_values)
        if all(value is not None for value in trial_values)
        else None
    )
    return CriticalityDataset(
        design=payload["design"],
        node_names=[node["name"] for node in nodes],
        scores=np.array([node["score"] for node in nodes]),
        labels=np.array([node["label"] for node in nodes]),
        threshold=float(payload["threshold"]),
        n_workloads=int(payload["n_workloads"]),
        trials=trials,
    )


# ----------------------------------------------------------------------
# trained GCN weights
# ----------------------------------------------------------------------
def save_gcn(model, path: PathLike) -> None:
    """Write a fitted GCN classifier/regressor's weights and
    architecture to an ``.npz`` archive."""
    if model.model is None:
        raise ReproError("cannot save an unfitted model")
    metadata = {
        "kind": "regressor" if isinstance(model, GCNRegressor)
        else "classifier",
        "hidden_dims": list(model.hidden_dims),
        "dropout": model.dropout,
        "adjacency_mode": model.adjacency_mode,
        "self_loops": model.self_loops,
        "conv": getattr(model, "conv", "gcn"),
    }
    arrays = {
        f"parameter_{index}": parameter.value
        for index, parameter in enumerate(model.model.parameters())
    }
    np.savez_compressed(
        path,
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
        **arrays,
    )


def load_gcn(path: PathLike, data: GraphData):
    """Rebuild a fitted GCN against ``data``'s graph and features.

    The model is reconstructed with the stored architecture, bound to
    the design's propagation matrix, and its weights restored — ready
    for :meth:`predict` without retraining.
    """
    from repro.models.gcn import build_gcn_stack

    with np.load(path) as archive:
        metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
        weights = [
            archive[f"parameter_{index}"]
            for index in range(
                sum(1 for key in archive.files
                    if key.startswith("parameter_"))
            )
        ]

    conv = metadata.get("conv", "gcn")
    if metadata["kind"] == "regressor":
        model = GCNRegressor(
            hidden_dims=tuple(metadata["hidden_dims"]),
            dropout=float(metadata["dropout"]),
            adjacency_mode=metadata["adjacency_mode"],
            self_loops=bool(metadata["self_loops"]),
        )
    else:
        model = GCNClassifier(
            hidden_dims=tuple(metadata["hidden_dims"]),
            dropout=float(metadata["dropout"]),
            adjacency_mode=metadata["adjacency_mode"],
            self_loops=bool(metadata["self_loops"]),
            conv=conv,
        )
    a_norm = data.a_norm(model.adjacency_mode, model.self_loops)
    model.model = build_gcn_stack(
        data.n_features,
        1 if metadata["kind"] == "regressor" else 2,
        a_norm,
        hidden_dims=model.hidden_dims,
        dropout=model.dropout,
        log_softmax=metadata["kind"] != "regressor",
        conv=conv,
    )
    parameters = model.model.parameters()
    if len(parameters) != len(weights):
        raise ReproError(
            "stored weights do not match the reconstructed architecture"
        )
    for parameter, value in zip(parameters, weights):
        if parameter.value.shape != value.shape:
            raise ReproError(
                f"weight shape mismatch: {parameter.value.shape} vs "
                f"{value.shape} (was the model trained on different "
                "features?)"
            )
        parameter.value[:] = value
    model._data = data  # noqa: SLF001 — bind for parameterless predict
    model.model.eval()
    return model


# ----------------------------------------------------------------------
# splits
# ----------------------------------------------------------------------
def save_split(split: Split, path: PathLike) -> None:
    """Write a train/validation split to ``.npz``."""
    np.savez_compressed(path, train_mask=split.train_mask,
                        val_mask=split.val_mask)


def load_split(path: PathLike) -> Split:
    """Read a split written by :func:`save_split`."""
    with np.load(path) as archive:
        return Split(train_mask=archive["train_mask"],
                     val_mask=archive["val_mask"])
