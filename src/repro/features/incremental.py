"""Incremental node-feature re-extraction for ECO mode.

Every §3.1 feature column's per-node value depends only on structure
and golden traces inside the node's own neighbourhood cones:
connection counts and inverting tags on the gate's pins, probability
features on the gate's golden trace (forward cone of edits), logic
levels / SCOAP CC on the fanin side, output distance / SCOAP CO on the
fanout side plus downstream side-input CCs.  All of those change only
for nodes inside the ECO dirty region (see :mod:`repro.fi.eco`'s
soundness argument), so an edited design's feature matrix can be
assembled by *patching*: dirty rows are computed fresh on the edited
design, clean rows are copied verbatim from the cached baseline — a
matrix bitwise identical to full re-extraction, stable for clean nodes
even across library drift in the recomputed path.

(Extraction is cheap next to the campaign — the point of patching is
artifact stability and validating the dirty region, not wall-clock.)
"""

from __future__ import annotations

from typing import AbstractSet, Optional, Sequence

import numpy as np

from repro.features.extract import NodeFeatures, extract_features
from repro.netlist.netlist import Netlist
from repro.sim.waveform import Workload
from repro.utils.errors import EcoError


def patch_features(
    base: NodeFeatures,
    netlist: Netlist,
    dirty_nodes: AbstractSet[str],
    workloads: Optional[Sequence[Workload]] = None,
    probability_source: str = "simulation",
) -> NodeFeatures:
    """Feature matrix for the edited ``netlist``, reusing clean rows.

    ``base`` is the pre-edit design's cached :class:`NodeFeatures`;
    ``dirty_nodes`` the ECO dirty region
    (:attr:`repro.fi.eco.DirtyRegion.dirty_nodes`).  The extended
    column set is inferred from ``base.feature_names``.

    Raises :class:`~repro.utils.errors.EcoError` when a clean node has
    no row in the baseline — that means ``dirty_nodes`` does not
    belong to this edit and patching would merge unrelated designs.
    """
    from repro.features.extract import FEATURE_NAMES

    extended = list(base.feature_names) != list(FEATURE_NAMES)
    fresh = extract_features(
        netlist,
        workloads=workloads,
        probability_source=probability_source,
        extended=extended,
    )
    if fresh.feature_names != base.feature_names:
        raise EcoError(
            "baseline feature set does not match this extraction "
            f"({base.feature_names} vs {fresh.feature_names})"
        )

    base_rows = {name: i for i, name in enumerate(base.node_names)}
    matrix = fresh.matrix.copy()
    for row, name in enumerate(fresh.node_names):
        if name in dirty_nodes:
            continue
        source = base_rows.get(name)
        if source is None:
            raise EcoError(
                f"node {name!r} is clean but missing from the feature "
                "baseline — the dirty region does not match this edit"
            )
        matrix[row] = base.matrix[source]

    return NodeFeatures(
        design=netlist.name,
        node_names=list(fresh.node_names),
        feature_names=list(fresh.feature_names),
        matrix=matrix,
    )
