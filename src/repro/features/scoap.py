"""SCOAP testability measures — extension feature source.

The Sandia Controllability/Observability Analysis Program (Goldstein,
1979) assigns each net three integer difficulty measures:

* ``CC0``/``CC1`` — combinational 0-/1-controllability: how hard it is
  to drive the net to 0/1 from the primary inputs;
* ``CO`` — combinational observability: how hard it is to propagate the
  net's value to a primary output.

These are the classic pre-ML proxies for fault detectability, so they
make a meaningful extended feature set for the criticality model (a
node that is hard to control *and* hard to observe rarely produces
functional failures; one that is trivially observable usually does).

The implementation is exact per cell — controllability and sensitization
costs are derived from each cell's truth table rather than per-gate-type
formulas, so every library cell (including the AOI/OAI complex gates and
MUX) is handled uniformly.  Sequential elements use the full-scan
convention: flip-flop outputs are controllable like primary inputs
(CC = 1) and flip-flop inputs are observable like primary outputs
(CO = 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.netlist.cells import Cell
from repro.netlist.netlist import Netlist

#: Cost cap standing in for "uncontrollable/unobservable" (avoids
#: overflow on reconvergent worst cases).
INFINITE = 10**6


@dataclass
class ScoapMeasures:
    """Per-net and per-gate SCOAP values."""

    net_cc0: np.ndarray
    net_cc1: np.ndarray
    net_co: np.ndarray
    #: per-gate views of the gate's output net
    gate_cc0: np.ndarray
    gate_cc1: np.ndarray
    gate_co: np.ndarray

    @property
    def gate_testability(self) -> np.ndarray:
        """Combined per-gate difficulty: min(CC0, CC1) + CO — the cost
        of exciting the easier stuck-at fault and observing it."""
        return np.minimum(self.gate_cc0, self.gate_cc1) + self.gate_co


def _cubes(n_inputs: int):
    """All input cubes: tuples over {0, 1, None} (None = don't-care)."""
    from itertools import product

    return product((0, 1, None), repeat=n_inputs)


def _completions(cube):
    """All full assignments consistent with a cube."""
    from itertools import product

    free = [i for i, bit in enumerate(cube) if bit is None]
    for values in product((0, 1), repeat=len(free)):
        full = list(cube)
        for position, value in zip(free, values):
            full[position] = value
        yield tuple(full)


def _cell_controllability(cell: Cell, cc0: List[int],
                          cc1: List[int]) -> Tuple[int, int]:
    """Exact output CC0/CC1 via cube enumeration.

    A cube's cost charges only its *specified* inputs (an OR output is 1
    as soon as one input is 1 — the other input is free), matching the
    textbook SCOAP rules exactly while covering every library cell,
    including the AOI/OAI complex gates, from its truth table.
    """
    table = {bits: out for bits, out in cell.truth_table()}
    best = {0: INFINITE, 1: INFINITE}
    for cube in _cubes(cell.n_inputs):
        outputs = {table[full] for full in _completions(cube)}
        if len(outputs) != 1:
            continue
        value = outputs.pop()
        cost = 1
        for position, bit in enumerate(cube):
            if bit is None:
                continue
            cost += cc1[position] if bit else cc0[position]
        if cost < best[value]:
            best[value] = cost
    return min(best[0], INFINITE), min(best[1], INFINITE)


def _sensitization_cost(cell: Cell, port: int, cc0: List[int],
                        cc1: List[int]) -> int:
    """Cheapest fully-specified side-input assignment that propagates a
    change on ``port`` to the output.

    Side inputs are charged even when the gate is sensitized for either
    value (XOR): classic SCOAP holds the side inputs at a *known* value,
    so ``CO(a) = CO(z) + min(CC0(b), CC1(b)) + 1`` for an XOR.
    """
    table = {bits: out for bits, out in cell.truth_table()}
    best = INFINITE
    for bits, out in table.items():
        flipped = list(bits)
        flipped[port] = 1 - flipped[port]
        if table[tuple(flipped)] == out:
            continue  # this assignment does not sensitize the port
        cost = 1
        for position, bit in enumerate(bits):
            if position == port:
                continue
            cost += cc1[position] if bit else cc0[position]
        best = min(best, cost)
    return best


def compute_scoap(netlist: Netlist) -> ScoapMeasures:
    """Compute SCOAP measures for every net and gate of ``netlist``."""
    n_nets = netlist.n_nets
    cc0 = np.full(n_nets, INFINITE, dtype=np.int64)
    cc1 = np.full(n_nets, INFINITE, dtype=np.int64)

    for net in netlist.input_nets():
        cc0[net] = 1
        cc1[net] = 1
    for gate in netlist.sequential_gates():
        cc0[gate.output] = 1  # full-scan convention
        cc1[gate.output] = 1

    order = [
        netlist.gates[index]
        for index in netlist.topological_order()
        if not netlist.gates[index].is_sequential
    ]
    for gate in order:
        in_cc0 = [int(cc0[net]) for net in gate.inputs]
        in_cc1 = [int(cc1[net]) for net in gate.inputs]
        zero, one = _cell_controllability(gate.cell, in_cc0, in_cc1)
        cc0[gate.output] = min(zero, INFINITE)
        cc1[gate.output] = min(one, INFINITE)

    # Observability: reverse topological sweep.
    co = np.full(n_nets, INFINITE, dtype=np.int64)
    for net, _ in netlist.primary_outputs:
        co[net] = 0
    for gate in netlist.sequential_gates():  # full-scan: D pins observable
        for net in gate.inputs:
            co[net] = min(co[net], 0)

    for gate in reversed(order):
        out_co = int(co[gate.output])
        if out_co >= INFINITE:
            continue
        in_cc0 = [int(cc0[net]) for net in gate.inputs]
        in_cc1 = [int(cc1[net]) for net in gate.inputs]
        for port, net in enumerate(gate.inputs):
            cost = _sensitization_cost(gate.cell, port, in_cc0, in_cc1)
            candidate = min(out_co + cost, INFINITE)
            if candidate < co[net]:
                co[net] = candidate

    output_nets = np.array([gate.output for gate in netlist.gates],
                           dtype=np.intp)
    return ScoapMeasures(
        net_cc0=cc0,
        net_cc1=cc1,
        net_co=co,
        gate_cc0=cc0[output_nets].astype(np.float64),
        gate_cc1=cc1[output_nets].astype(np.float64),
        gate_co=co[output_nets].astype(np.float64),
    )
