"""Node feature extraction: structural descriptors and signal
probabilities (simulation-based and analytic COP)."""

from repro.features.extract import (
    EXTENDED_FEATURE_NAMES,
    FEATURE_NAMES,
    NodeFeatures,
    extract_features,
)
from repro.features.incremental import patch_features
from repro.features.probability import (
    ProbabilityFeatures,
    cop_probabilities,
    from_golden_stats,
    simulate_probabilities,
)
from repro.features.scoap import ScoapMeasures, compute_scoap
from repro.features.structural import (
    connection_counts,
    fanin_counts,
    fanout_counts,
    inverting_tags,
    is_sequential_flags,
    logic_levels,
    output_distances,
)

__all__ = [
    "EXTENDED_FEATURE_NAMES",
    "FEATURE_NAMES",
    "NodeFeatures",
    "extract_features",
    "patch_features",
    "ProbabilityFeatures",
    "cop_probabilities",
    "from_golden_stats",
    "simulate_probabilities",
    "ScoapMeasures",
    "compute_scoap",
    "connection_counts",
    "fanin_counts",
    "fanout_counts",
    "inverting_tags",
    "is_sequential_flags",
    "logic_levels",
    "output_distances",
]
