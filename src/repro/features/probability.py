"""Signal-probability node features.

The paper's §3.1.2/§3.1.3 features — intrinsic state probability and
intrinsic transition probability — are computed two ways:

* **Simulation-based** (default, what the paper's flow does): measured
  from golden-run activity over the workload suite via
  :class:`~repro.sim.bitparallel.GoldenStats`.
* **Analytic (COP)**: the classic controllability-observability-program
  propagation — assume independent inputs at P(1)=0.5, propagate exact
  per-cell output probabilities in topological order, and iterate the
  sequential feedback to a fixpoint.  Used by the ablation comparing
  feature sources, and available when no workloads exist yet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.netlist.netlist import Netlist
from repro.sim.bitparallel import BitParallelSimulator, GoldenStats
from repro.sim.waveform import Workload


@dataclass
class ProbabilityFeatures:
    """Per-gate probability features (aligned with gate indices)."""

    state_probability_one: np.ndarray
    state_probability_zero: np.ndarray
    transition_probability: np.ndarray


def from_golden_stats(netlist: Netlist,
                      stats: GoldenStats) -> ProbabilityFeatures:
    """Map per-net golden statistics onto gates (via output nets)."""
    output_nets = np.array([gate.output for gate in netlist.gates],
                           dtype=np.intp)
    p_one = stats.state_probability_one[output_nets]
    return ProbabilityFeatures(
        state_probability_one=p_one,
        state_probability_zero=1.0 - p_one,
        transition_probability=stats.transition_probability[output_nets],
    )


def simulate_probabilities(
    netlist: Netlist,
    workloads: Sequence[Workload],
) -> ProbabilityFeatures:
    """Simulation-based probabilities from golden runs of ``workloads``."""
    stats = BitParallelSimulator(netlist).golden_stats(workloads)
    return from_golden_stats(netlist, stats)


def cop_probabilities(
    netlist: Netlist,
    input_probability: float = 0.5,
    iterations: int = 16,
    tolerance: float = 1e-6,
) -> ProbabilityFeatures:
    """Analytic COP signal probabilities.

    Primary inputs are independent with ``P(1) = input_probability``.
    Combinational cells propagate exact truth-table probabilities under
    an input-independence assumption; sequential feedback is resolved by
    fixpoint iteration (flop output probability this round = its
    next-state probability from the previous round, starting at the
    reset state, 0).

    The transition probability uses the temporal-independence
    approximation ``P_t = 2 p (1 - p)``.
    """
    n_nets = netlist.n_nets
    probability = np.zeros(n_nets)
    for net in netlist.input_nets():
        probability[net] = input_probability

    order = [
        netlist.gates[index]
        for index in netlist.topological_order()
        if not netlist.gates[index].is_sequential
    ]
    flops = netlist.sequential_gates()

    for _ in range(max(1, iterations)):
        previous = probability.copy()
        for gate in order:
            probability[gate.output] = gate.cell.output_probability(
                [probability[net] for net in gate.inputs]
            )
        next_state = [
            gate.cell.output_probability(
                [probability[net] for net in gate.inputs]
            )
            for gate in flops
        ]
        for gate, value in zip(flops, next_state):
            probability[gate.output] = value
        if np.max(np.abs(probability - previous)) < tolerance:
            break

    # One final combinational settle so combinational nets reflect the
    # converged state probabilities.
    for gate in order:
        probability[gate.output] = gate.cell.output_probability(
            [probability[net] for net in gate.inputs]
        )

    output_nets = np.array([gate.output for gate in netlist.gates],
                           dtype=np.intp)
    p_one = probability[output_nets]
    return ProbabilityFeatures(
        state_probability_one=p_one,
        state_probability_zero=1.0 - p_one,
        transition_probability=2.0 * p_one * (1.0 - p_one),
    )
