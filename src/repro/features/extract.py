"""Node feature-matrix assembly (§3.1 of the paper).

The canonical feature set — in the exact order the paper's Table 2 and
Figure 5 report them — is:

1. Number of connections (fan-ins + fan-outs)
2. Intrinsic state probability of 0
3. Intrinsic state probability of 1
4. State transition probability
5. Boolean inverting tag

:func:`extract_features` builds the ``N x F`` matrix for a design, with
probabilities measured from golden simulation of a workload suite
(default) or computed analytically (COP).  An extended feature set with
additional structural descriptors is available for the ablation
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.features.probability import (
    ProbabilityFeatures,
    cop_probabilities,
    simulate_probabilities,
)
from repro.features.structural import (
    connection_counts,
    fanin_counts,
    fanout_counts,
    inverting_tags,
    is_sequential_flags,
    logic_levels,
    output_distances,
)
from repro.netlist.netlist import Netlist
from repro.sim.waveform import Workload
from repro.utils.errors import SimulationError

#: Canonical feature names, matching the paper's Table 2 columns.
FEATURE_NAMES: List[str] = [
    "Number of connections",
    "Intrinsic state probability of 0",
    "Intrinsic state probability of 1",
    "State transition probability",
    "Boolean inverting tag",
]

#: Additional structural features for ablation studies.
EXTENDED_FEATURE_NAMES: List[str] = [
    "Fan-in count",
    "Fan-out count",
    "Logic level",
    "Output distance",
    "Is sequential",
    "SCOAP CC0",
    "SCOAP CC1",
    "SCOAP CO",
]


@dataclass
class NodeFeatures:
    """A design's node feature matrix plus naming metadata."""

    design: str
    node_names: List[str]
    feature_names: List[str]
    matrix: np.ndarray  # float64, shape (n_nodes, n_features)

    def __post_init__(self) -> None:
        self.matrix = np.asarray(self.matrix, dtype=np.float64)
        if self.matrix.shape != (len(self.node_names),
                                 len(self.feature_names)):
            raise SimulationError("feature matrix shape mismatch")

    @property
    def n_nodes(self) -> int:
        return len(self.node_names)

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    def column(self, feature_name: str) -> np.ndarray:
        """One feature column by name."""
        try:
            index = self.feature_names.index(feature_name)
        except ValueError:
            raise SimulationError(
                f"unknown feature {feature_name!r}"
            ) from None
        return self.matrix[:, index]

    def row(self, node_name: str) -> np.ndarray:
        """One node's feature vector by name."""
        try:
            index = self.node_names.index(node_name)
        except ValueError:
            raise SimulationError(f"unknown node {node_name!r}") from None
        return self.matrix[index]

    def without(self, feature_name: str) -> "NodeFeatures":
        """A copy with one feature column removed (for ablations)."""
        try:
            drop = self.feature_names.index(feature_name)
        except ValueError:
            raise SimulationError(
                f"unknown feature {feature_name!r}"
            ) from None
        keep = [i for i in range(self.n_features) if i != drop]
        return NodeFeatures(
            design=self.design,
            node_names=list(self.node_names),
            feature_names=[self.feature_names[i] for i in keep],
            matrix=self.matrix[:, keep],
        )

    def standardized(self) -> "NodeFeatures":
        """Z-score standardized copy (constant columns pass through)."""
        mean = self.matrix.mean(axis=0)
        std = self.matrix.std(axis=0)
        std[std == 0.0] = 1.0
        return NodeFeatures(
            design=self.design,
            node_names=list(self.node_names),
            feature_names=list(self.feature_names),
            matrix=(self.matrix - mean) / std,
        )


def extract_features(
    netlist: Netlist,
    workloads: Optional[Sequence[Workload]] = None,
    probability_source: str = "simulation",
    extended: bool = False,
) -> NodeFeatures:
    """Build the node feature matrix for ``netlist``.

    Args:
        netlist: The design.
        workloads: Golden-simulation stimulus for the probability
            features (required when ``probability_source`` is
            ``"simulation"``).
        probability_source: ``"simulation"`` (paper's flow) or
            ``"cop"`` (analytic propagation, workload-free).
        extended: Append the extra structural feature columns.

    Returns:
        A :class:`NodeFeatures` with one row per gate, in gate order.
    """
    if probability_source == "simulation":
        if not workloads:
            raise SimulationError(
                "simulation-based probabilities need workloads; pass "
                "workloads= or use probability_source='cop'"
            )
        probabilities = simulate_probabilities(netlist, workloads)
    elif probability_source == "cop":
        probabilities = cop_probabilities(netlist)
    else:
        raise SimulationError(
            f"unknown probability source {probability_source!r}"
        )

    columns = [
        connection_counts(netlist),
        probabilities.state_probability_zero,
        probabilities.state_probability_one,
        probabilities.transition_probability,
        inverting_tags(netlist),
    ]
    names = list(FEATURE_NAMES)
    if extended:
        from repro.features.scoap import compute_scoap

        scoap = compute_scoap(netlist)
        columns.extend([
            fanin_counts(netlist),
            fanout_counts(netlist),
            logic_levels(netlist),
            output_distances(netlist),
            is_sequential_flags(netlist),
            scoap.gate_cc0,
            scoap.gate_cc1,
            scoap.gate_co,
        ])
        names.extend(EXTENDED_FEATURE_NAMES)

    return NodeFeatures(
        design=netlist.name,
        node_names=netlist.node_names(),
        feature_names=names,
        matrix=np.column_stack(columns),
    )
