"""Structural node features.

Covers the paper's two structure-derived features — the connection
count (§3.1.1) and the Boolean inverting tag (§3.1.4) — plus extra
structural descriptors (logic level, output distance, fanin/fanout
split) used by the ablation benchmarks.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.netlist.netlist import Netlist


def connection_counts(netlist: Netlist) -> np.ndarray:
    """Per-gate total connections: fan-ins plus fan-outs (§3.1.1)."""
    adjacency = netlist.gate_adjacency()
    return (
        adjacency.fanin_connections + adjacency.fanout_connections
    ).astype(np.float64)


def fanin_counts(netlist: Netlist) -> np.ndarray:
    """Per-gate fan-in connection count."""
    return netlist.gate_adjacency().fanin_connections.astype(
        np.float64
    )


def fanout_counts(netlist: Netlist) -> np.ndarray:
    """Per-gate fan-out connection count."""
    return netlist.gate_adjacency().fanout_connections.astype(
        np.float64
    )


def inverting_tags(netlist: Netlist) -> np.ndarray:
    """Per-gate Boolean tag: 1 when the cell negates logic (§3.1.4)."""
    return np.array(
        [1.0 if gate.cell.inverting else 0.0 for gate in netlist.gates]
    )


def logic_levels(netlist: Netlist) -> np.ndarray:
    """Per-gate topological level (flops at level 0)."""
    return np.array(netlist.levelize(), dtype=np.float64)


def is_sequential_flags(netlist: Netlist) -> np.ndarray:
    """Per-gate flag: 1 for flip-flops."""
    return np.array(
        [1.0 if gate.is_sequential else 0.0 for gate in netlist.gates]
    )


def output_distances(netlist: Netlist) -> np.ndarray:
    """Per-gate shortest forward distance (in gates) to any primary
    output, treating flip-flops as unit hops.  Gates that cannot reach
    an output get the design's gate count (should not happen in a
    validated netlist)."""
    unreachable = float(netlist.n_gates)
    distance = np.full(netlist.n_gates, unreachable)

    po_nets = {net for net, _ in netlist.primary_outputs}
    frontier: List[int] = []
    for gate in netlist.gates:
        if gate.output in po_nets:
            distance[gate.index] = 0.0
            frontier.append(gate.index)

    # Reverse BFS over driving gates, through the cached CSR rows.
    adjacency = netlist.gate_adjacency()
    cursor = 0
    while cursor < len(frontier):
        gate_index = frontier[cursor]
        cursor += 1
        next_distance = distance[gate_index] + 1.0
        for driver in adjacency.fanin_row(gate_index):
            if next_distance < distance[driver]:
                distance[driver] = next_distance
                frontier.append(int(driver))
    return distance
