"""Structural node features.

Covers the paper's two structure-derived features — the connection
count (§3.1.1) and the Boolean inverting tag (§3.1.4) — plus extra
structural descriptors (logic level, output distance, fanin/fanout
split) used by the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.netlist.netlist import Netlist


def connection_counts(netlist: Netlist) -> np.ndarray:
    """Per-gate total connections: fan-ins plus fan-outs (§3.1.1)."""
    adjacency = netlist.gate_adjacency()
    return (
        adjacency.fanin_connections + adjacency.fanout_connections
    ).astype(np.float64)


def fanin_counts(netlist: Netlist) -> np.ndarray:
    """Per-gate fan-in connection count."""
    return netlist.gate_adjacency().fanin_connections.astype(
        np.float64
    )


def fanout_counts(netlist: Netlist) -> np.ndarray:
    """Per-gate fan-out connection count."""
    return netlist.gate_adjacency().fanout_connections.astype(
        np.float64
    )


def inverting_tags(netlist: Netlist) -> np.ndarray:
    """Per-gate Boolean tag: 1 when the cell negates logic (§3.1.4)."""
    return netlist.gate_arrays().inverting.astype(np.float64)


def logic_levels(netlist: Netlist) -> np.ndarray:
    """Per-gate topological level (flops at level 0)."""
    return np.array(netlist.levelize(), dtype=np.float64)


def is_sequential_flags(netlist: Netlist) -> np.ndarray:
    """Per-gate flag: 1 for flip-flops."""
    return netlist.gate_arrays().sequential.astype(np.float64)


def output_distances(netlist: Netlist) -> np.ndarray:
    """Per-gate shortest forward distance (in gates) to any primary
    output, treating flip-flops as unit hops.  Gates that cannot reach
    an output get the design's gate count (should not happen in a
    validated netlist)."""
    n_gates = netlist.n_gates
    unreachable = float(n_gates)
    distance = np.full(n_gates, unreachable)
    if n_gates == 0:
        return distance

    arrays = netlist.gate_arrays()
    po_mask = np.zeros(netlist.n_nets, dtype=bool)
    for net, _ in netlist.primary_outputs:
        po_mask[net] = True

    # Level-synchronous reverse BFS over driving gates through the
    # cached CSR fanin rows: the whole frontier expands in one gather
    # per level instead of one Python loop iteration per edge.
    adjacency = netlist.gate_adjacency()
    visited = np.zeros(n_gates, dtype=bool)
    frontier = np.flatnonzero(po_mask[arrays.output_net])
    visited[frontier] = True
    level = 0.0
    while frontier.size:
        distance[frontier] = level
        drivers = adjacency.fanin_rows(frontier)
        if drivers.size:
            drivers = np.unique(drivers[~visited[drivers]])
        visited[drivers] = True
        frontier = drivers
        level += 1.0
    return distance
