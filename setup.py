"""Legacy setup shim: lets `pip install -e .` work on environments
whose setuptools predates PEP 660 editable wheels (no `wheel` pkg)."""
from setuptools import setup

setup()
