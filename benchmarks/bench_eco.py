"""ECO-mode incremental re-analysis vs full campaign rerun.

After a small netlist edit, ``run_eco_campaign`` rebuilds the fault
campaign from the frozen baseline's per-output mismatch traces plus a
single packed bit-parallel pass over the edit's backward support cone
— bitwise identical to a full rerun, at a fraction of the cost.  This
benchmark commits the headline claim in machine-readable form:
``results/BENCH_eco.json`` records the full-rerun and incremental
wall clocks for a 5-gate (~1% of gates) edit on the largest
evaluation design, asserts the merged rows are bitwise identical, and
freezes the full-rerun reference measured when the benchmark was
introduced so later regressions show up as a ratio.

Runs two ways:

* ``pytest benchmarks/bench_eco.py`` — full measurement, writes the
  JSON artifact and asserts the >=10x acceptance bar.
* ``python benchmarks/bench_eco.py [--smoke]`` — standalone;
  ``--smoke`` shrinks the suite for the CI guard (exercises diff,
  trace sidecar, support-cone merge, and the bitwise check end to
  end, skips the artifact write and the 10x bar).
"""

import argparse
import copy
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks.hostinfo import host_metadata  # pytest (package)
except ImportError:
    from hostinfo import host_metadata  # standalone script

RESULTS_DIR = Path(__file__).parent / "results"
ARTIFACT = "BENCH_eco.json"

DESIGN = "or1200_if"
WORKLOADS = 8
CYCLES = 200
REPEATS = 3

#: The benchmark ECO: five cell re-types (~1% of the 504 gates),
#: spread across the instruction mux and the stall logic so the dirty
#: region crosses strobed outputs and sequential state.
EDITS = {
    "U503": ("NR2", "OR2"),
    "U504": ("AN2", "ND2"),
    "U303": ("AN2", "ND2"),
    "U304": ("OR2", "NR2"),
    "U307": ("AN2", "ND2"),
}

#: Full-rerun wall clock on this exact suite, measured at the commit
#: that introduced ECO mode.  Frozen so the committed artifact keeps a
#: stable denominator: a later engine speedup (or regression) changes
#: ``full_rerun`` but not the avoided work the ECO path is judged
#: against.
FULL_RERUN_REFERENCE = {
    "design": "or1200_if",
    "n_faults": 1008,
    "workloads": 8,
    "cycles_per_workload": 200,
    "seconds": 2.096,
}


def _edited(netlist):
    """Apply the benchmark ECO to a deep copy of the design."""
    from repro.netlist.cells import get_cell

    edited = copy.deepcopy(netlist)
    applied = 0
    for gate in edited.gates:
        if gate.instance in EDITS:
            was, becomes = EDITS[gate.instance]
            assert gate.cell.name == was, (gate.instance, gate.cell.name)
            gate.cell = get_cell(becomes)
            applied += 1
    assert applied == len(EDITS)
    edited.invalidate_structure()
    return edited


def run_benchmark(n_workloads=WORKLOADS, cycles=CYCLES,
                  repeats=REPEATS, smoke=False):
    """Measure full rerun vs incremental, assemble the payload."""
    from repro import build_design
    from repro.fi import (
        run_campaign,
        run_campaign_with_traces,
        run_eco_campaign,
    )
    from repro.fi.observation import DESIGN_OBSERVATION, DESIGN_SEVERITY
    from repro.sim import design_workloads

    old = build_design(DESIGN)
    new = _edited(old)
    workloads = design_workloads(DESIGN, old, count=n_workloads,
                                 cycles=cycles, seed=0)
    spec = DESIGN_OBSERVATION[DESIGN]
    severity = DESIGN_SEVERITY[DESIGN]

    with tempfile.TemporaryDirectory() as base_dir:
        # Baseline prep (the investment, not part of the measurement):
        # the pre-edit campaign recorded with per-output traces.
        started = time.perf_counter()
        base, _ = run_campaign_with_traces(
            old, workloads, observation=spec, severity=severity,
            checkpoint_dir=base_dir,
        )
        prep_seconds = time.perf_counter() - started

        # Interleaved best-of-N: each round measures the full rerun
        # and the incremental path back to back so host-level drift
        # lands evenly on both sides.
        best_full = best_eco = None
        full = eco = None
        for _ in range(repeats):
            started = time.perf_counter()
            full = run_campaign(new, workloads, observation=spec,
                                severity=severity, collapse=False)
            elapsed = time.perf_counter() - started
            if best_full is None or elapsed < best_full:
                best_full = elapsed

            started = time.perf_counter()
            eco = run_eco_campaign(
                old, new, workloads, observation=spec,
                severity=severity, base_checkpoint_dir=base_dir,
            )
            elapsed = time.perf_counter() - started
            if best_eco is None or elapsed < best_eco:
                best_eco = elapsed

    merged = eco.result
    bitwise = (
        np.array_equal(merged.error_cycles, full.error_cycles)
        and np.array_equal(merged.detection_cycle,
                           full.detection_cycle)
        and np.array_equal(merged.latent, full.latent)
        and [(f.node_name, f.stuck_at) for f in merged.faults]
        == [(f.node_name, f.stuck_at) for f in full.faults]
    )

    payload = {
        "design": DESIGN,
        "n_gates": old.n_gates,
        "n_faults": eco.n_faults,
        "workloads": n_workloads,
        "cycles_per_workload": cycles,
        "edit": {
            "gates_edited": len(EDITS),
            "pct_of_gates": round(100 * len(EDITS) / old.n_gates, 2),
            "dirty_nodes": len(eco.region.dirty_nodes),
            "dirty_faults": eco.n_dirty,
            "affected_outputs": len(eco.region.affected_outputs),
        },
        "base_prep_seconds": round(prep_seconds, 3),
        "full_rerun_seconds": round(best_full, 3),
        "eco_seconds": round(best_eco, 3),
        "speedup": round(best_full / best_eco, 2),
        "bitwise_identical": bitwise,
        "host": host_metadata(best_of=repeats),
        "full_rerun_reference": FULL_RERUN_REFERENCE,
    }
    if not smoke:
        payload["speedup_vs_reference"] = round(
            FULL_RERUN_REFERENCE["seconds"] / best_eco, 2
        )
    return payload


def test_eco_speedup(benchmark, artifact):
    payload = {}

    def run():
        payload.update(run_benchmark())
        return payload

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert payload["bitwise_identical"]
    # The ECO acceptance bar: a ~1% edit re-analyzes >=10x faster
    # than a full rerun of the largest design.
    assert payload["speedup"] >= 10.0
    artifact(ARTIFACT, json.dumps(payload, indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny suite, single repeat, no artifact, "
                             "no 10x bar (the CI guard)")
    parser.add_argument("--out", metavar="FILE.json",
                        help="write the payload here instead of "
                             f"results/{ARTIFACT}")
    args = parser.parse_args(argv)

    if args.smoke:
        payload = run_benchmark(n_workloads=2, cycles=60, repeats=1,
                                smoke=True)
    else:
        payload = run_benchmark()
    text = json.dumps(payload, indent=2)
    print(text)
    if not payload["bitwise_identical"]:
        print("FAIL: merged rows differ from the full rerun",
              file=sys.stderr)
        return 1
    if not args.smoke:
        if payload["speedup"] < 10.0:
            print(f"FAIL: speedup {payload['speedup']}x below the "
                  "10x acceptance bar", file=sys.stderr)
            return 1
        out = Path(args.out) if args.out else RESULTS_DIR / ARTIFACT
        out.parent.mkdir(exist_ok=True)
        out.write_text(text + "\n", encoding="utf-8")
        print(f"\nartifact -> {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))
    sys.exit(main())
