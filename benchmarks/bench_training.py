"""Zero-allocation training engine vs the module-by-module path.

The compiled workspace (preallocated activation/gradient buffers,
direct ``sparsetools`` kernels, packed single-buffer optimizer state,
monitor-forward prefix reuse) trains the Table-1 classifier bitwise
identically to the generic module path; fast-math mode adds
operand-order selection and first-layer propagation caching on top.
This benchmark commits the headline claim in machine-readable form:
``results/BENCH_training.json`` records interleaved best-of-N wall
clocks for all three paths on or1200_if, asserts the engine's exact
mode reproduced the module path's history and weights bit for bit, and
asserts the fast-math acceptance bar — >= 2x over the module path on a
single core.  The pre-rewrite wall clocks measured at the commit that
introduced the engine are frozen in ``SEED_REFERENCE`` so later
regressions show up as a ratio.

Runs two ways:

* ``pytest benchmarks/bench_training.py`` — full measurement, writes
  the JSON artifact and asserts the >=2x acceptance bar.
* ``python benchmarks/bench_training.py [--smoke]`` — standalone;
  ``--smoke`` shrinks the run for the CI guard (exercises all three
  paths plus the bitwise check end to end, skips the artifact write
  and the 2x bar).
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks.hostinfo import host_metadata  # pytest (package)
except ImportError:
    from hostinfo import host_metadata  # standalone script

RESULTS_DIR = Path(__file__).parent / "results"
ARTIFACT = "BENCH_training.json"

DESIGN = "or1200_if"
EPOCHS = 300
REPEATS = 9

#: Wall clocks of the pre-rewrite implementation (module-by-module
#: forward/backward, per-parameter optimizer loop) measured on this
#: suite at the commit that introduced the engine.  Frozen so the
#: committed artifact keeps a stable denominator across later engine
#: work; the asserted bar uses the live interleaved module path, which
#: is immune to host drift between measurement batches.
SEED_REFERENCE = {
    "design": "or1200_if",
    "classifier_epochs": 300,
    "classifier_seconds": 0.7875,
    "regressor_epochs": 400,
    "regressor_seconds": 0.8877,
    "grid_search_seconds": 3.513,
}


def _case():
    """The Table-1 classifier's training inputs on or1200_if."""
    from repro import build_design
    from repro.features.extract import extract_features
    from repro.graph.adjacency import normalized_adjacency
    from repro.graph.build import netlist_edges

    netlist = build_design(DESIGN)
    features = extract_features(netlist, probability_source="cop")
    x = features.standardized().matrix
    n = netlist.n_gates
    a_norm = normalized_adjacency(netlist_edges(netlist), n)
    rng = np.random.default_rng(7)
    y = (rng.random(n) < 0.25).astype(np.int64)
    train_mask = rng.random(n) < 0.7
    return netlist, x, a_norm, y, train_mask, ~train_mask


def run_benchmark(epochs=EPOCHS, repeats=REPEATS, smoke=False):
    """Measure the three training paths, assemble the payload."""
    from repro.models.gcn import build_gcn_stack
    from repro.nn import TrainingConfig, train_classifier
    from repro.nn.engine import PropagationCache
    from repro.nn.gridsearch import grid_search

    netlist, x, a_norm, y, train_mask, val_mask = _case()
    in_features = x.shape[1]
    cache = PropagationCache()

    configs = {
        "module": TrainingConfig(epochs=epochs, patience=0,
                                 engine="module"),
        "engine_exact": TrainingConfig(epochs=epochs, patience=0),
        "engine_fast": TrainingConfig(epochs=epochs, patience=0,
                                      fast_math=True),
    }

    def run_once(name):
        model = build_gcn_stack(in_features, 2, a_norm)
        started = time.perf_counter()
        history = train_classifier(
            model, x, y, train_mask, val_mask, configs[name],
            cache=cache if name == "engine_fast" else None,
        )
        return time.perf_counter() - started, history, model

    # Warmup primes numpy/scipy code paths and the propagation cache
    # (cached across every later fast-math run, as in grid search).
    runs = {name: run_once(name) for name in configs}

    # Interleaved best-of-N: each round measures all three paths back
    # to back so host-level drift lands evenly on every side.
    best = {name: elapsed for name, (elapsed, _, _) in runs.items()}
    for _ in range(repeats - 1):
        for name in configs:
            elapsed, _, _ = run_once(name)
            if elapsed < best[name]:
                best[name] = elapsed

    # Bitwise guard: the engine's exact mode must have reproduced the
    # module path's history and final weights exactly.
    _, module_history, module_model = runs["module"]
    _, engine_history, engine_model = runs["engine_exact"]
    bitwise = (
        module_history.train_loss == engine_history.train_loss
        and module_history.val_metric == engine_history.val_metric
        and all(
            np.array_equal(a.value, b.value)
            for a, b in zip(module_model.parameters(),
                            engine_model.parameters())
        )
    )

    payload = {
        "design": DESIGN,
        "n_gates": netlist.n_gates,
        "n_features": in_features,
        "epochs": epochs,
        "labels": "bernoulli(0.25), seed 7 (fixed benchmark labels)",
        "module_seconds": round(best["module"], 4),
        "engine_exact_seconds": round(best["engine_exact"], 4),
        "engine_fast_seconds": round(best["engine_fast"], 4),
        "speedup_exact": round(best["module"] / best["engine_exact"], 2),
        "speedup": round(best["module"] / best["engine_fast"], 2),
        "bitwise_identical": bitwise,
        "host": host_metadata(best_of=repeats),
        "seed_reference": SEED_REFERENCE,
    }
    if not smoke:
        payload["speedup_vs_reference"] = round(
            SEED_REFERENCE["classifier_seconds"] / best["engine_fast"],
            2,
        )
        # Grid-search context: the full Table-1 grid (12 candidates)
        # through the fast engine with the shared propagation cache —
        # the first layer's A* @ X is computed once and amortized over
        # every candidate.  Context only (single measurement); the
        # asserted bar above is the interleaved classifier ratio.
        def builder(hidden_dims, dropout, seed):
            return build_gcn_stack(in_features, 2, a_norm,
                                   hidden_dims=hidden_dims,
                                   dropout=dropout, seed=seed)

        started = time.perf_counter()
        grid = grid_search(builder, x, y, train_mask, val_mask,
                           fast_math=True, cache=cache)
        grid_seconds = time.perf_counter() - started
        payload["grid_search"] = {
            "candidates": len(grid.points),
            "seconds": round(grid_seconds, 3),
            "speedup_vs_reference": round(
                SEED_REFERENCE["grid_search_seconds"] / grid_seconds, 2
            ),
        }
    return payload


def test_training_speedup(benchmark, artifact):
    payload = {}

    def run():
        payload.update(run_benchmark())
        return payload

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert payload["bitwise_identical"]
    # The acceptance bar: Table-1 classifier training on or1200_if
    # >= 2x faster than the module path on a single core (fast-math
    # engine, paired interleaved measurement).
    assert payload["speedup"] >= 2.0
    artifact(ARTIFACT, json.dumps(payload, indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short run, single repeat, no artifact, "
                             "no 2x bar (the CI guard)")
    parser.add_argument("--out", metavar="FILE.json",
                        help="write the payload here instead of "
                             f"results/{ARTIFACT}")
    args = parser.parse_args(argv)

    if args.smoke:
        payload = run_benchmark(epochs=30, repeats=1, smoke=True)
    else:
        payload = run_benchmark()
    text = json.dumps(payload, indent=2)
    print(text)
    if not payload["bitwise_identical"]:
        print("FAIL: engine history/weights differ from the module "
              "path", file=sys.stderr)
        return 1
    if not args.smoke:
        if payload["speedup"] < 2.0:
            print(f"FAIL: speedup {payload['speedup']}x below the "
                  "2x acceptance bar", file=sys.stderr)
            return 1
        out = Path(args.out) if args.out else RESULTS_DIR / ARTIFACT
        out.parent.mkdir(exist_ok=True)
        out.write_text(text + "\n", encoding="utf-8")
        print(f"\nartifact -> {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))
    sys.exit(main())
