"""Extension experiments beyond the paper's evaluation.

* **SGC probe** — how much of the GCN's advantage is plain neighborhood
  smoothing?  SGC (A*^K X + logistic head, the paper's reference [12])
  vs the full GCN vs the best feature-only baseline.
* **Cross-design transfer** — train the GCN on one design, classify
  another without any fault injection there: the logical endpoint of
  the paper's "train on part of the design, skip FI on the rest".
* **Transient (SEU) criticality** — the same pipeline applied to
  single-event upsets in state elements, giving AVF-style flop
  vulnerability.
* **Fault collapsing** — structural equivalence classes and their
  simulation savings (results provably identical; see the test suite).
"""

import numpy as np
import pytest

from benchmarks.conftest import DESIGNS
from repro.fi import (
    collapse_faults,
    dataset_from_campaign,
    full_fault_universe,
    run_transient_campaign,
)
from repro.models import GCNClassifier
from repro.models.sgc import SGCClassifier
from repro.reporting import render_table


def test_sgc_structure_probe(benchmark, analyzers,
                             multi_split_results, artifact):
    """SGC sits between feature-only baselines and the full GCN."""
    from repro.graph import stratified_split

    rows = []

    def run():
        for design in DESIGNS:
            data = analyzers[design].data
            sgc_accuracies = []
            for index in range(5):
                split = stratified_split(data.y_class, 0.2,
                                         seed=(0, "fig3", index))
                model = SGCClassifier(k=3).fit(data, split)
                sgc_accuracies.append(model.accuracy(split.val_mask))
            gcn = float(np.mean(
                [run[0] for run in multi_split_results[design]["GCN"]]
            ))
            best_baseline = max(
                float(np.mean([run[0] for run in runs]))
                for name, runs in multi_split_results[design].items()
                if name != "GCN"
            )
            rows.append({
                "design": design,
                "best feature baseline": f"{best_baseline:.1%}",
                "SGC (K=3)": f"{np.mean(sgc_accuracies):.1%}",
                "GCN": f"{gcn:.1%}",
            })
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    artifact("ext_sgc_probe.txt", render_table(
        rows, title="Extension — structure probe: baseline vs SGC vs GCN"
    ))
    assert len(rows) == len(DESIGNS)


def test_cross_design_transfer(benchmark, analyzers, artifact):
    """Train on design A, classify design B's nodes — zero FI on B.

    This is a **negative result**, reported as such: naive transfer
    collapses (often below the majority class) because the probability
    features are standardized per design and each design's criticality
    landscape reflects its own workloads, observation strobes and
    severity policy.  The experiment quantifies why the paper's flow is
    *within-design* — FI a subset of the design's own nodes — rather
    than across designs.
    """
    rows = []
    off_diagonal = []
    diagonal = []

    def run():
        for source in DESIGNS:
            model = analyzers[source].classifier
            row = {"train on \\ test on": source}
            for target in DESIGNS:
                target_data = analyzers[target].data
                if target == source:
                    accuracy = analyzers[source].validation_accuracy()
                    diagonal.append(accuracy)
                else:
                    transferred = model.transfer_to(target_data)
                    predictions = transferred.predict()
                    accuracy = float(
                        (predictions == target_data.y_class).mean()
                    )
                    off_diagonal.append(accuracy)
                row[target] = f"{accuracy:.1%}"
            rows.append(row)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    artifact("ext_transfer.txt", render_table(
        rows,
        title="Extension — cross-design transfer accuracy "
              "(NEGATIVE RESULT: diagonal = within-design held-out "
              "accuracy; off-diagonal = naive transfer)",
    ))
    # The finding: within-design learning is strong, naive transfer is
    # not — a wide gap on every pair.
    assert min(diagonal) >= 0.85
    assert max(off_diagonal) < min(diagonal) - 0.2


def test_transient_criticality(benchmark, analyzers, artifact):
    """SEU campaigns: flop vulnerability per design."""
    rows = []
    top_rows = []

    def run():
        for design in DESIGNS:
            analyzer = analyzers[design]
            campaign = run_transient_campaign(
                analyzer.netlist, analyzer.workloads,
                injections_per_flop=6, seed=0, severity=0.05,
            )
            dataset = dataset_from_campaign(campaign, threshold=0.5)
            rows.append({
                "design": design,
                "flops": dataset.n_nodes,
                "injections": len(campaign.faults),
                "SEU-critical flops": int(dataset.labels.sum()),
                "mean vulnerability": round(float(dataset.scores.mean()),
                                            3),
                "seconds": round(campaign.simulation_seconds, 2),
            })
            order = np.argsort(-dataset.scores)[:3]
            for position in order:
                top_rows.append({
                    "design": design,
                    "flop": dataset.node_names[position],
                    "vulnerability": round(
                        float(dataset.scores[position]), 3
                    ),
                })
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    artifact("ext_transient.txt",
             render_table(rows, title="Extension — SEU campaigns "
                                      "(severity 5% error-rate)")
             + "\n\n"
             + render_table(top_rows,
                            title="Most SEU-vulnerable state bits"))
    # Permanent faults dominate transients: mean SEU vulnerability is
    # below the stuck-at critical fraction everywhere.
    for design, row in zip(DESIGNS, rows):
        stuck_fraction = analyzers[design].data.y_class.mean()
        assert row["mean vulnerability"] <= stuck_fraction + 0.05


def test_fault_collapsing_ratios(benchmark, analyzers, artifact):
    rows = []

    def run():
        for design in DESIGNS:
            netlist = analyzers[design].netlist
            universe = collapse_faults(
                netlist, full_fault_universe(netlist)
            )
            rows.append({
                "design": design,
                "faults": len(universe.original),
                "classes": len(universe.representatives),
                "simulations avoided": f"{universe.collapse_ratio:.1%}",
            })
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    artifact("ext_collapsing.txt", render_table(
        rows, title="Extension — structural fault collapsing"
    ))
    for row in rows:
        assert row["classes"] <= row["faults"]


def test_selective_hardening(benchmark, analyzers, artifact):
    """Closing the loop the paper motivates: use predicted criticality
    to decide where to spend hardening resources (TMR), then re-run the
    campaign and measure the design-level failure-probability drop.

    Compared against a random-selection policy with the same budget and
    the ground-truth oracle; GCN guidance should approach the oracle
    and clearly beat random.

    Metric: expected failures per uniformly-random single fault in
    *mission logic* — all original gates plus TMR replicas.  Majority
    voters are excluded under the standard rad-hard-voter assumption
    (a voter inherits exactly the criticality of the node it protects,
    so un-hardened voters would merely relocate the risk; real TMR
    flows implement voters in hardened cells)."""
    from repro.fi import dataset_from_campaign, run_campaign
    from repro.netlist.transform import harden_nodes

    design = "or1200_icfsm"
    budget = 16
    rows = []

    def mission_failure_probability(dataset, n_original):
        mission = [
            score
            for name, score in zip(dataset.node_names, dataset.scores)
            if "_vab" not in name and "_vac" not in name
            and "_vbc" not in name and "_vote" not in name
        ]
        # Normalize by the original node count so policies with more
        # replicas are not rewarded for diluting the mean.
        return float(np.sum(mission) / n_original)

    def run():
        analyzer = analyzers[design]
        baseline = analyzer.dataset
        workloads = analyzer.workloads
        netlist = analyzer.netlist
        rng = np.random.default_rng(3)

        predicted = analyzer.regressor.predict()
        policies = {
            "none (baseline)": [],
            "random": list(rng.choice(baseline.node_names, budget,
                                      replace=False)),
            "GCN-guided": [
                baseline.node_names[i]
                for i in np.argsort(-predicted)[:budget]
            ],
            "oracle (measured)": [
                baseline.node_names[i]
                for i in np.argsort(-baseline.scores)[:budget]
            ],
        }
        n_original = baseline.n_nodes
        for policy, nodes in policies.items():
            if nodes:
                target = harden_nodes(netlist, nodes)
                campaign = run_campaign(target, workloads)
                dataset = dataset_from_campaign(campaign)
            else:
                dataset = baseline
            rows.append({
                "policy": policy,
                "hardened nodes": len(nodes),
                "mission failure probability": round(
                    mission_failure_probability(dataset, n_original), 4
                ),
            })
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    artifact("ext_hardening.txt", render_table(
        rows,
        title=f"Extension — selective TMR hardening on {design} "
              f"(budget {budget} nodes; rad-hard voters assumed; "
              "failure probability over mission logic)",
    ))

    by_policy = {row["policy"]: row["mission failure probability"]
                 for row in rows}
    assert by_policy["GCN-guided"] < by_policy["none (baseline)"]
    assert by_policy["GCN-guided"] < by_policy["random"]
    # GCN guidance lands within reach of the oracle.
    improvement_gcn = by_policy["none (baseline)"] - by_policy["GCN-guided"]
    improvement_oracle = (by_policy["none (baseline)"]
                          - by_policy["oracle (measured)"])
    assert improvement_gcn >= 0.5 * improvement_oracle


def test_fourth_design_generalization(benchmark, artifact):
    """The framework applied to a design outside the paper's three —
    a UART transceiver with loopback workloads — checking the GCN's
    advantage is not specific to the tuned evaluation designs."""
    from repro import AnalyzerConfig, FaultCriticalityAnalyzer, build_design
    from repro.graph import stratified_split
    from repro.models import BASELINE_NAMES, GCNClassifier, make_classifier

    rows = []

    def run():
        # UART frames span 44 cycles, so workloads are longer than
        # the default to carry enough frames for stable criticality
        # estimates (~9 frames each).
        analyzer = FaultCriticalityAnalyzer(
            build_design("uart"),
            AnalyzerConfig(seed=0, workload_cycles=400),
        )
        data = analyzer.data
        accuracies = {name: [] for name in ("GCN",) + tuple(BASELINE_NAMES)}
        for index in range(5):
            split = stratified_split(data.y_class, 0.2,
                                     seed=(0, "uart", index))
            model = GCNClassifier(seed=(0, "uart-gcn", index))
            model.fit(data, split)
            accuracies["GCN"].append(model.accuracy(split.val_mask))
            for name in BASELINE_NAMES:
                baseline = make_classifier(name)
                baseline.fit(data.x[split.train_mask],
                             data.y_class[split.train_mask])
                accuracies[name].append(baseline.score(
                    data.x[split.val_mask], data.y_class[split.val_mask]
                ))
        row = {"design": "uart",
               "nodes": data.n_nodes,
               "critical": f"{data.y_class.mean():.1%}"}
        row.update({name: f"{np.mean(values):.1%}"
                    for name, values in accuracies.items()})
        rows.append(row)
        return accuracies

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact("ext_fourth_design.txt", render_table(
        rows, title="Extension — generalization to a fourth design "
                    "(UART, loopback workloads, mean over 5 splits)"
    ))
    gcn = np.mean(accuracies["GCN"])
    best_baseline = max(
        np.mean(accuracies[name]) for name in BASELINE_NAMES
    )
    assert gcn > best_baseline  # the GCN's advantage generalizes


def test_training_fraction_learning_curve(benchmark, analyzers,
                                          artifact):
    """The paper's core premise quantified: FI-label a *fraction* of
    the design's nodes and predict the rest.  Sweeps the training
    fraction on every design; the 80/20 operating point the paper uses
    sits on the flat part of the curve, and even 40% labeled keeps the
    model well above the majority class."""
    from repro.graph import stratified_split
    from repro.models import GCNClassifier

    fractions = (0.2, 0.4, 0.6, 0.8)
    rows = []

    def run():
        for design in DESIGNS:
            data = analyzers[design].data
            row = {"design": design,
                   "majority class":
                       f"{max(data.y_class.mean(), 1 - data.y_class.mean()):.1%}"}
            for fraction in fractions:
                accuracies = []
                for index in range(3):
                    # val_fraction = 1 - train fraction; accuracy is
                    # always measured on the unlabeled remainder.
                    split = stratified_split(
                        data.y_class, 1.0 - fraction,
                        seed=(3, "curve", fraction, index),
                    )
                    model = GCNClassifier(
                        seed=(3, "curve-gcn", fraction, index)
                    )
                    model.fit(data, split)
                    accuracies.append(model.accuracy(split.val_mask))
                row[f"train {fraction:.0%}"] = (
                    f"{np.mean(accuracies):.1%}"
                )
            rows.append(row)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    artifact("ext_learning_curve.txt", render_table(
        rows,
        title="Extension — accuracy on unlabeled nodes vs fraction of "
              "the design fault-injected (mean over 3 splits)",
    ))

    for row in rows:
        majority = float(row["majority class"].rstrip("%")) / 100
        accuracy_40 = float(row["train 40%"].rstrip("%")) / 100
        accuracy_80 = float(row["train 80%"].rstrip("%")) / 100
        assert accuracy_40 > majority            # subset FI pays off early
        assert accuracy_80 >= accuracy_40 - 0.03  # more labels never hurt much
