"""Campaign-engine throughput: serial vs sharded vs multi-core.

Fault-simulation throughput caps the size of the ground-truth dataset
Algorithm 1 can afford, so this benchmark tracks the engine's headline
numbers in machine-readable form: ``results/BENCH_campaign.json``
records cycles/sec, fault-experiment-cycles/sec, and the speedups of
the sharded/parallel configurations over serial — plus a frozen
``seed_reference`` (the pre-optimization engine measured on the same
workload shape) so inner-loop regressions show up as a ratio < 1.

Runs two ways:

* ``pytest benchmarks/bench_campaign.py`` — full measurement, writes
  the JSON artifact next to the other rendered results.
* ``python benchmarks/bench_campaign.py [--smoke] [--jobs N]`` —
  standalone; ``--smoke`` shrinks the workload suite for the CI guard
  (exercises the parallel path end to end, skips the artifact write).
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks.hostinfo import host_metadata  # pytest (package)
except ImportError:
    from hostinfo import host_metadata  # standalone script

RESULTS_DIR = Path(__file__).parent / "results"
ARTIFACT = "BENCH_campaign.json"

DESIGN = "or1200_icfsm"
WORKLOADS = 8
CYCLES = 200

#: Pre-optimization engine (per-cycle allocations, per-mismatch-cycle
#: unpackbits) measured on this exact workload shape at the commit that
#: introduced this benchmark.  Frozen so every later run reports the
#: cumulative inner-loop speedup, not just run-to-run noise.
SEED_REFERENCE = {
    "design": "or1200_icfsm",
    "n_faults": 526,
    "n_nets": 302,
    "workloads": 8,
    "cycles_per_workload": 200,
    "seconds": 1.385,
    "cycles_per_sec": 1155.3,
    "fault_cycles_per_sec": 607670.9,
}


def _measure_interleaved(design, workloads, configs, repeats=3):
    """Best-of-N wall clock per configuration, rounds interleaved.

    One full round measures every configuration back to back before
    the next round starts, so slow host-level drift (thermal
    throttling, cache pressure from neighbours on a shared box) lands
    evenly on all configurations instead of on whichever block ran
    last — on a timeshared single-core host that drift is larger than
    the differences being measured.
    """
    from repro.fi import run_campaign

    best = {name: None for name in configs}
    results = {}
    for _ in range(repeats):
        for name, campaign_kwargs in configs.items():
            started = time.perf_counter()
            result = run_campaign(design, workloads,
                                  **campaign_kwargs)
            elapsed = time.perf_counter() - started
            assert not result.failures
            results[name] = result
            if best[name] is None or elapsed < best[name]:
                best[name] = elapsed
    return best, results


def run_benchmark(design_name=DESIGN, n_workloads=WORKLOADS,
                  cycles=CYCLES, jobs=2, repeats=5):
    """Measure serial / sharded / parallel and assemble the payload."""
    from repro import build_design
    from repro.sim import design_workloads

    design = build_design(design_name)
    workloads = design_workloads(design.name, design,
                                 count=n_workloads, cycles=cycles,
                                 seed=0)
    total_cycles = n_workloads * cycles

    best, results = _measure_interleaved(design, workloads, {
        "serial": {},
        "sharded_serial": {"shard_size": "auto"},
        "parallel": {"shard_size": "auto", "jobs": jobs},
    }, repeats=repeats)
    serial_s, sharded_s, parallel_s = (
        best["serial"], best["sharded_serial"], best["parallel"]
    )
    serial, sharded, parallel = (
        results["serial"], results["sharded_serial"],
        results["parallel"],
    )
    for other in (sharded, parallel):
        assert np.array_equal(serial.error_cycles, other.error_cycles)
        assert np.array_equal(serial.detection_cycle,
                              other.detection_cycle)

    n_faults = len(serial.faults)

    def rates(seconds):
        return {
            "seconds": round(seconds, 3),
            "cycles_per_sec": round(total_cycles / seconds, 1),
            "fault_cycles_per_sec": round(
                n_faults * total_cycles / seconds, 1
            ),
        }

    return {
        "design": design.name,
        "n_faults": n_faults,
        "n_nets": design.n_nets,
        "workloads": n_workloads,
        "cycles_per_workload": cycles,
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "host": host_metadata(best_of=repeats),
        "serial": rates(serial_s),
        "sharded_serial": rates(sharded_s),
        "parallel": rates(parallel_s),
        "parallel_speedup_vs_serial": round(serial_s / parallel_s, 2),
        "seed_reference": SEED_REFERENCE,
        "serial_speedup_vs_seed": round(
            (n_faults * total_cycles / serial_s)
            / SEED_REFERENCE["fault_cycles_per_sec"], 2
        ),
    }


def test_campaign_throughput(benchmark, artifact):
    payload = {}

    def run():
        payload.update(run_benchmark())
        return payload

    benchmark.pedantic(run, rounds=1, iterations=1)
    # jobs=1 must never regress against the pre-optimization engine.
    assert payload["serial_speedup_vs_seed"] >= 1.0
    artifact(ARTIFACT, json.dumps(payload, indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny suite, single repeat, no artifact "
                             "(the CI guard)")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--out", metavar="FILE.json",
                        help="write the payload here instead of "
                             f"results/{ARTIFACT}")
    args = parser.parse_args(argv)

    if args.smoke:
        payload = run_benchmark(n_workloads=2, cycles=60,
                                jobs=args.jobs, repeats=1)
    else:
        payload = run_benchmark(jobs=args.jobs)
    text = json.dumps(payload, indent=2)
    print(text)
    if not args.smoke:
        out = Path(args.out) if args.out else RESULTS_DIR / ARTIFACT
        out.parent.mkdir(exist_ok=True)
        out.write_text(text + "\n", encoding="utf-8")
        print(f"\nartifact -> {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))
    sys.exit(main())
