"""Design-ingestion front-end scaling: parse -> Netlist -> features.

The ingestion path (streaming Verilog reader, bulk `Netlist`
construction, vectorized edge/feature extraction) is O(V+E) end to
end.  This benchmark commits that claim in machine-readable form:
``results/BENCH_frontend.json`` records wall clocks for each front-end
stage on FSM×datapath grid designs at geometric sizes (~500 to ~120k
gates), fits the empirical scaling exponent per stage on a log-log
regression, and asserts

* exponent < 1.3 for netlist construction, Verilog parsing, and
  edge + feature extraction, and
* a wall-clock bound for the full ~100k-gate ingest
  (parse -> edges -> feature matrix) on the 1-core bench host.

Runs two ways:

* ``pytest benchmarks/bench_frontend.py`` — full measurement, writes
  the JSON artifact and asserts the exponent and 100k-gate bounds
  (tier-2: the ~100k sizes take minutes, keep out of tier-1).
* ``python benchmarks/bench_frontend.py [--smoke]`` — standalone;
  ``--smoke`` runs tiny sizes once for the CI guard (exercises
  generator, writer, parser, and feature extraction end to end, skips
  the artifact write and the bounds).
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks.hostinfo import host_metadata  # pytest (package)
except ImportError:
    from hostinfo import host_metadata  # standalone script

RESULTS_DIR = Path(__file__).parent / "results"
ARTIFACT = "BENCH_frontend.json"

#: Square grid sizes (tiles double per axis -> ~4x gates per step).
SIZES = ((2, 2), (4, 4), (8, 8), (16, 16), (32, 32))
SMOKE_SIZES = ((2, 2), (3, 3))
WIDTH = 8
REPEATS = 3

#: Acceptance bars (see ISSUE 8 / docs/performance.md).
EXPONENT_BOUND = 1.3
INGEST_100K_BOUND_SECONDS = 60.0

#: Stage wall clocks for the largest size measured at the commit that
#: introduced the linear-time front end, frozen so later regressions
#: show up as a ratio against a stable reference.
REFERENCE_100K = {
    "n_gates": 122373,
    "parse_seconds": 5.26,
    "edge_feature_seconds": 9.06,
    "ingest_seconds": 14.32,
}


def _best_of(repeats, thunk):
    best = None
    result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = thunk()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def measure_size(rows, cols, repeats=REPEATS):
    """Time every front-end stage for one grid size."""
    from repro.circuits import build_fsm_grid
    from repro.features.extract import extract_features
    from repro.graph.build import netlist_edges
    from repro.netlist.verilog import from_verilog, to_verilog

    build_seconds, netlist = _best_of(
        repeats, lambda: build_fsm_grid(rows, cols, width=WIDTH)
    )
    write_seconds, source = _best_of(repeats, lambda: to_verilog(netlist))
    parse_seconds, parsed = _best_of(repeats, lambda: from_verilog(source))
    assert parsed.n_gates == netlist.n_gates
    assert parsed.n_nets == netlist.n_nets

    def edge_feature():
        # Cold caches each repeat: this stage times the vectorized
        # CSR/array builds, not a dictionary lookup.
        parsed.invalidate_structure()
        edges = netlist_edges(parsed)
        features = extract_features(parsed, probability_source="cop")
        return edges, features

    edge_feature_seconds, (edges, features) = _best_of(
        repeats, edge_feature
    )
    assert features.matrix.shape == (parsed.n_gates, 5)

    return {
        "rows": rows,
        "cols": cols,
        "n_gates": netlist.n_gates,
        "n_nets": netlist.n_nets,
        "n_edges": int(edges.shape[1]),
        "verilog_chars": len(source),
        "netlist_build_seconds": round(build_seconds, 4),
        "write_seconds": round(write_seconds, 4),
        "parse_seconds": round(parse_seconds, 4),
        "edge_feature_seconds": round(edge_feature_seconds, 4),
        "ingest_seconds": round(parse_seconds + edge_feature_seconds, 4),
    }


def scaling_exponent(sizes, key):
    """Slope of log(time) vs log(n_gates) across the measured sizes."""
    gates = np.array([s["n_gates"] for s in sizes], dtype=np.float64)
    times = np.array([s[key] for s in sizes], dtype=np.float64)
    slope = np.polyfit(np.log(gates), np.log(times), 1)[0]
    return round(float(slope), 3)


def run_benchmark(sizes=SIZES, repeats=REPEATS, smoke=False):
    measured = [measure_size(rows, cols, repeats=repeats)
                for rows, cols in sizes]
    payload = {
        "design_family": f"fsm_grid(width={WIDTH})",
        "repeats": repeats,
        "sizes": measured,
        "host": host_metadata(best_of=repeats),
    }
    if not smoke:
        largest = measured[-1]
        payload["scaling_exponents"] = {
            "netlist_build": scaling_exponent(
                measured, "netlist_build_seconds"
            ),
            "parse": scaling_exponent(measured, "parse_seconds"),
            "edge_feature": scaling_exponent(
                measured, "edge_feature_seconds"
            ),
        }
        payload["exponent_bound"] = EXPONENT_BOUND
        payload["ingest_100k"] = {
            "n_gates": largest["n_gates"],
            "parse_seconds": largest["parse_seconds"],
            "edge_feature_seconds": largest["edge_feature_seconds"],
            "ingest_seconds": largest["ingest_seconds"],
            "bound_seconds": INGEST_100K_BOUND_SECONDS,
        }
        payload["reference_100k"] = REFERENCE_100K
    return payload


def check_bounds(payload):
    """Return a list of human-readable bound violations (empty = pass)."""
    problems = []
    for stage, exponent in payload["scaling_exponents"].items():
        if exponent >= EXPONENT_BOUND:
            problems.append(
                f"{stage} scaling exponent {exponent} >= "
                f"{EXPONENT_BOUND}"
            )
    ingest = payload["ingest_100k"]
    if ingest["ingest_seconds"] >= INGEST_100K_BOUND_SECONDS:
        problems.append(
            f"{ingest['n_gates']}-gate ingest took "
            f"{ingest['ingest_seconds']}s >= "
            f"{INGEST_100K_BOUND_SECONDS}s"
        )
    return problems


def test_frontend_scaling(benchmark, artifact):
    """Tier-2 pytest entry: full measurement + asserted bounds.

    Covers the 'a ~100k-gate ingest stays under the benchmark's bound'
    regression: the largest size here is ~122k gates and the
    parse -> features wall clock is asserted against
    ``INGEST_100K_BOUND_SECONDS``.
    """
    payload = {}

    def run():
        payload.update(run_benchmark())
        return payload

    benchmark.pedantic(run, rounds=1, iterations=1)
    problems = check_bounds(payload)
    assert not problems, problems
    artifact(ARTIFACT, json.dumps(payload, indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes, single repeat, no artifact, "
                             "no bounds (the CI guard)")
    parser.add_argument("--out", metavar="FILE.json",
                        help="write the payload here instead of "
                             f"results/{ARTIFACT}")
    args = parser.parse_args(argv)

    if args.smoke:
        payload = run_benchmark(sizes=SMOKE_SIZES, repeats=1,
                                smoke=True)
        print(json.dumps(payload, indent=2))
        return 0

    payload = run_benchmark()
    text = json.dumps(payload, indent=2)
    print(text)
    problems = check_bounds(payload)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    out = Path(args.out) if args.out else RESULTS_DIR / ARTIFACT
    out.parent.mkdir(exist_ok=True)
    out.write_text(text + "\n", encoding="utf-8")
    print(f"\nartifact -> {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))
    sys.exit(main())
