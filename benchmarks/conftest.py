"""Shared benchmark fixtures.

The three evaluation analyzers are session-scoped: the fault-injection
campaigns, features and trained models are built once and reused by
every table/figure benchmark.  Rendered artifacts (the tables and
ASCII figures each benchmark regenerates) are written to
``benchmarks/results/`` so the numbers behind EXPERIMENTS.md are
reproducible from a plain ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import AnalyzerConfig, FaultCriticalityAnalyzer, build_design

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper-reported numbers for shape comparison in rendered artifacts.
PAPER = {
    "accuracy": {"sdram_controller": 0.9034, "or1200_if": 0.937,
                 "or1200_icfsm": 0.8103},
    "auc": {"sdram_controller": 0.92, "or1200_if": 0.90,
            "or1200_icfsm": 0.86},
    "baseline_ceiling": {"sdram_controller": 0.77, "or1200_if": 0.78,
                         "or1200_icfsm": 0.72},
}

DESIGNS = ("sdram_controller", "or1200_if", "or1200_icfsm")
_SHORT = {"sdram_controller": "sdram", "or1200_if": "or1200_if",
          "or1200_icfsm": "or1200_icfsm"}


@pytest.fixture(scope="session")
def analyzers():
    """Fully-run analyzers for the three evaluation designs."""
    built = {}
    for design in DESIGNS:
        analyzer = FaultCriticalityAnalyzer(
            build_design(_SHORT[design]), AnalyzerConfig(seed=0)
        )
        analyzer.classifier  # materialize the expensive stages once
        analyzer.regressor
        built[design] = analyzer
    return built


@pytest.fixture(scope="session")
def multi_split_results(analyzers):
    """Per-design, per-classifier results over five stratified splits.

    Shared by the Figure 3 (accuracy) and Figure 4 (ROC) benchmarks so
    the models are trained once: maps design -> classifier name ->
    list of (validation_accuracy, RocCurve, truth, predictions).
    """
    from repro.graph import stratified_split
    from repro.metrics import roc_curve
    from repro.models import BASELINE_NAMES, GCNClassifier, make_classifier

    results = {}
    for design in DESIGNS:
        data = analyzers[design].data
        per_model = {
            name: [] for name in ("GCN",) + tuple(BASELINE_NAMES)
        }
        for index in range(5):
            split = stratified_split(data.y_class, 0.2,
                                     seed=(0, "fig3", index))
            truth = data.y_class[split.val_mask]

            model = GCNClassifier(seed=(0, "fig3-gcn", index))
            model.fit(data, split)
            scores = model.predict_proba()[:, 1][split.val_mask]
            gcn_predictions = model.predict()[split.val_mask]
            per_model["GCN"].append((
                model.accuracy(split.val_mask),
                roc_curve(truth, scores),
                truth,
                gcn_predictions,
            ))
            for name in BASELINE_NAMES:
                baseline = make_classifier(name)
                baseline.fit(data.x[split.train_mask],
                             data.y_class[split.train_mask])
                scores = baseline.predict_proba(
                    data.x[split.val_mask]
                )[:, 1]
                predictions = baseline.predict(data.x[split.val_mask])
                accuracy = float((predictions == truth).mean())
                per_model[name].append((
                    accuracy, roc_curve(truth, scores), truth,
                    predictions,
                ))
        results[design] = per_model
    return results


@pytest.fixture(scope="session")
def artifact():
    """Writer for rendered benchmark artifacts."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (RESULTS_DIR / name).write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}")

    return write
