"""Host metadata for benchmark artifacts.

The committed BENCH_*.json numbers are only comparable when the host
shape is known — a 1-core container reports very different parallel
speedups than a workstation — so every benchmark payload embeds the
same ``host`` block: logical CPU count, the scheduler affinity mask
actually granted to this process (the honest core count on cgroup-
limited CI runners), platform, Python version, and the best-of-N
measurement discipline used.
"""

import os
import platform
import sys


def host_metadata(best_of: int) -> dict:
    """The ``host`` block embedded in every BENCH_*.json payload."""
    try:
        usable_cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux hosts
        usable_cpus = os.cpu_count()
    return {
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpus,
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "measurement": f"best of {best_of} interleaved rounds",
    }
