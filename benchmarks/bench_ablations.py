"""Ablation studies over the design choices DESIGN.md calls out.

All ablations run on the SDRAM-controller dataset (the mid-sized
design) against the shipped configuration:

* adjacency normalization: symmetric (Eq. 2) vs row, with/without
  self-loops;
* node features: drop each of the five paper features in turn;
* probability source: simulation-measured vs analytic COP;
* GCN depth: 2 vs 3 vs 4 convolution layers;
* criticality threshold: 0.3 / 0.5 / 0.7 label cuts.
"""

import numpy as np
import pytest

from repro.features import FEATURE_NAMES, extract_features
from repro.fi import dataset_from_campaign
from repro.graph import build_graph_data, stratified_split
from repro.models import GCNClassifier
from repro.reporting import render_table

N_SPLITS = 3


def mean_accuracy(data, label, hidden_dims=(16, 32, 64),
                  adjacency_mode="symmetric", self_loops=True,
                  conv="gcn"):
    values = []
    for index in range(N_SPLITS):
        split = stratified_split(data.y_class, 0.2,
                                 seed=(1, "ablate", label, index))
        model = GCNClassifier(
            hidden_dims=hidden_dims, adjacency_mode=adjacency_mode,
            self_loops=self_loops, seed=(1, "ablate-gcn", label, index),
            conv=conv,
        )
        model.fit(data, split)
        values.append(model.accuracy(split.val_mask))
    return float(np.mean(values))


def test_ablations(benchmark, analyzers, artifact):
    analyzer = analyzers["sdram_controller"]
    data = analyzer.data
    sections = []

    def run():
        # --- adjacency handling ---------------------------------------
        rows = [
            {"variant": "symmetric + self-loops (paper)",
             "accuracy": mean_accuracy(data, "sym")},
            {"variant": "row-normalized",
             "accuracy": mean_accuracy(data, "row",
                                       adjacency_mode="row")},
            {"variant": "no self-loops",
             "accuracy": mean_accuracy(data, "noloop",
                                       self_loops=False)},
            {"variant": "GraphSAGE (mean aggregation)",
             "accuracy": mean_accuracy(data, "sage", conv="sage")},
        ]
        sections.append(render_table(
            [{**row, "accuracy": f"{row['accuracy']:.1%}"}
             for row in rows],
            title="Ablation — propagation variants (Eq. 2 and alternatives)",
        ))

        # --- feature drops ---------------------------------------------
        feature_rows = [{
            "features": "all five (paper)",
            "accuracy": f"{mean_accuracy(data, 'all'):.1%}",
        }]
        for name in FEATURE_NAMES:
            keep = [f for f in data.feature_names if f != name]
            reduced = data.subset_features(keep)
            feature_rows.append({
                "features": f"without '{name}'",
                "accuracy": f"{mean_accuracy(reduced, name):.1%}",
            })
        sections.append(render_table(
            feature_rows, title="Ablation — dropping node features"
        ))

        # --- probability source ------------------------------------------
        cop_features = extract_features(
            analyzer.netlist, probability_source="cop"
        )
        cop_data = build_graph_data(
            analyzer.netlist, cop_features, analyzer.dataset
        )
        sections.append(render_table(
            [
                {"probability source": "golden simulation (paper)",
                 "accuracy": f"{mean_accuracy(data, 'sim-prob'):.1%}"},
                {"probability source": "analytic COP",
                 "accuracy": f"{mean_accuracy(cop_data, 'cop-prob'):.1%}"},
            ],
            title="Ablation — probability feature source",
        ))

        # --- depth ------------------------------------------------------
        depth_rows = []
        for dims in ((16,), (16, 32), (16, 32, 64)):
            depth_rows.append({
                "conv layers": len(dims) + 1,
                "hidden dims": "-".join(map(str, dims)),
                "accuracy": f"{mean_accuracy(data, str(dims), hidden_dims=dims):.1%}",
            })
        sections.append(render_table(
            depth_rows, title="Ablation — GCN depth"
        ))

        # --- criticality threshold ---------------------------------------
        threshold_rows = []
        for threshold in (0.3, 0.5, 0.7):
            dataset = dataset_from_campaign(
                analyzer.campaign, threshold=threshold
            )
            thresholded = build_graph_data(
                analyzer.netlist, analyzer.features, dataset
            )
            threshold_rows.append({
                "threshold": threshold,
                "critical fraction": f"{dataset.critical_fraction:.1%}",
                "accuracy": f"{mean_accuracy(thresholded, str(threshold)):.1%}",
            })
        sections.append(render_table(
            threshold_rows,
            title="Ablation — criticality threshold (Algorithm 1)",
        ))
        return sections

    benchmark.pedantic(run, rounds=1, iterations=1)
    artifact("ablations.txt", "\n\n".join(sections))
    assert len(sections) == 5


def test_fi_budget_sensitivity(benchmark, analyzers, artifact):
    """How much fault-injection budget does training need?  Sweeps the
    workload count used to *label* (and feature-extract) the ICFSM
    design and reports GCN accuracy against labels from the full
    16-workload campaign — the practical question behind the paper's
    cost argument."""
    from repro import AnalyzerConfig, FaultCriticalityAnalyzer
    from repro.graph import stratified_split
    from repro.models import GCNClassifier

    reference = analyzers["or1200_icfsm"]
    reference_labels = reference.data.y_class
    rows = []

    def run():
        for budget in (4, 8, 12, 16):
            analyzer = FaultCriticalityAnalyzer(
                reference.netlist,
                AnalyzerConfig(seed=0, n_workloads=budget),
            )
            data = analyzer.data
            agreements = float(
                (data.y_class == reference_labels).mean()
            )
            accuracies = []
            for index in range(3):
                split = stratified_split(data.y_class, 0.2,
                                         seed=(2, "budget", index))
                model = GCNClassifier(seed=(2, "budget-gcn", index))
                model.fit(data, split)
                # Score against the *reference* labels on the held-out
                # fold: does a cheap campaign train a model that still
                # matches the thorough campaign's ground truth?
                predictions = model.predict()
                accuracies.append(float(
                    (predictions[split.val_mask]
                     == reference_labels[split.val_mask]).mean()
                ))
            rows.append({
                "workloads": budget,
                "label agreement with 16-wl campaign":
                    f"{agreements:.1%}",
                "GCN accuracy vs 16-wl labels":
                    f"{np.mean(accuracies):.1%}",
            })
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    artifact("ablation_fi_budget.txt", render_table(
        rows,
        title="Ablation — FI workload budget (or1200_icfsm): labels "
              "and models from cheaper campaigns vs the full suite",
    ))
    # More budget never hurts label agreement.
    agreements = [float(r["label agreement with 16-wl campaign"]
                        .rstrip("%")) for r in rows]
    assert agreements[-1] == 100.0
    assert agreements[0] <= agreements[-1]
