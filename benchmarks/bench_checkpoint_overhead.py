"""Resilience tax — campaign checkpoint overhead.

The resilient runner durably writes one ``.npz`` per completed workload
so a killed campaign resumes instead of restarting.  Durability is only
free to adopt if the write path costs a small fraction of the
simulation it protects; this benchmark measures, per design, the
wall-clock of a plain campaign vs a checkpointed one vs a checkpoint
resume (which skips all simulation), and the bytes a checkpoint store
occupies on disk.
"""

import time

import numpy as np

from benchmarks.conftest import DESIGNS
from repro.fi import run_campaign
from repro.reporting import render_table
from repro.sim import design_workloads

WORKLOADS = 8
CYCLES = 150


def test_checkpoint_overhead(benchmark, artifact, tmp_path_factory):
    from repro import build_design

    short = {"sdram_controller": "sdram", "or1200_if": "or1200_if",
             "or1200_icfsm": "or1200_icfsm"}
    rows = []

    def run():
        for design_name in DESIGNS:
            design = build_design(short[design_name])
            workloads = design_workloads(design.name, design,
                                         count=WORKLOADS,
                                         cycles=CYCLES, seed=0)
            store = tmp_path_factory.mktemp(f"ckpt_{design_name}")

            started = time.perf_counter()
            plain = run_campaign(design, workloads)
            plain_seconds = time.perf_counter() - started

            started = time.perf_counter()
            checkpointed = run_campaign(design, workloads,
                                        checkpoint_dir=store)
            checkpointed_seconds = time.perf_counter() - started

            started = time.perf_counter()
            resumed = run_campaign(design, workloads,
                                   checkpoint_dir=store, resume=True)
            resume_seconds = time.perf_counter() - started

            assert np.array_equal(plain.error_cycles,
                                  resumed.error_cycles)
            store_bytes = sum(
                path.stat().st_size for path in store.iterdir()
            )
            overhead = checkpointed_seconds / plain_seconds - 1.0
            rows.append({
                "design": design_name,
                "plain s": round(plain_seconds, 2),
                "checkpointed s": round(checkpointed_seconds, 2),
                "overhead": f"{overhead:+.1%}",
                "resume s": round(resume_seconds, 3),
                "resume speedup": (
                    f"{plain_seconds / resume_seconds:,.0f}x"
                ),
                "store KiB": round(store_bytes / 1024, 1),
            })
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = render_table(
        rows,
        title="Campaign checkpoint overhead "
              f"({WORKLOADS} workloads x {CYCLES} cycles, "
              "full fault universe)",
    )
    artifact("checkpoint_overhead.txt", table)

    # Shape: durability costs a small fraction of the simulation it
    # protects, and resuming a finished campaign is pure I/O.
    for row in rows:
        assert row["checkpointed s"] < row["plain s"] * 1.5
        assert row["resume s"] < row["plain s"]
