"""Table 2 — per-node classification, feature importances, and
criticality scores.

Regenerates the paper's Table 2: four sampled validation nodes per
design with the GCN's Critical/Non-critical call, the GNNExplainer
feature-importance scores, and the GCN-regressor criticality score.
Also checks the §5 claim that regression scores conform with the
classification outcomes (>85% agreement at the 0.5 threshold).
"""

import numpy as np
import pytest

from benchmarks.conftest import DESIGNS
from repro.reporting import render_table

NODES_PER_DESIGN = 4


def test_table2_node_report(benchmark, analyzers, artifact):
    all_rows = []
    conformities = {}

    def run():
        for design in DESIGNS:
            analyzer = analyzers[design]
            rng = np.random.default_rng(7)
            validation_nodes = np.flatnonzero(analyzer.split.val_mask)
            # Sample nodes with both predicted classes represented.
            predictions = analyzer.classifier.predict()
            critical = validation_nodes[
                predictions[validation_nodes] == 1
            ]
            benign = validation_nodes[
                predictions[validation_nodes] == 0
            ]
            chosen = []
            for pool, count in ((critical, 2), (benign, 2)):
                if len(pool):
                    chosen.extend(
                        rng.choice(pool, min(count, len(pool)),
                                   replace=False)
                    )
            reports = analyzer.node_report([int(i) for i in chosen])
            for report in reports:
                all_rows.append(report.as_row())
            conformities[design] = analyzer.regression_quality()
        return all_rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = render_table(
        all_rows,
        title="Table 2 — critical-node classification, feature "
              "importance scores and criticality-score predictions",
    )
    conformity_rows = [
        {
            "design": design,
            "score/class conformity": f"{q['conformity_with_classifier']:.1%}",
            "score/label conformity": f"{q['conformity_with_labels']:.1%}",
            "pearson r": round(q["pearson"], 3),
        }
        for design, q in conformities.items()
    ]
    conformity_table = render_table(
        conformity_rows,
        title="Regressor/classifier agreement (paper: >85% conformity)",
    )
    artifact("table2_node_report.txt", table + "\n\n" + conformity_table)

    # Shape assertions mirroring the paper's observations:
    for row in all_rows:
        score = row["criticality score"]
        assert 0.0 <= score <= 1.0
        # Predicted scores align with the classification at 0.5 for the
        # large majority of sampled nodes (checked in aggregate below).
    agreement = np.mean([
        (row["criticality score"] >= 0.5)
        == (row["classification"] == "Critical")
        for row in all_rows
    ])
    assert agreement >= 0.75
    # §5: score predictions show "significant (over 85%) correlation
    # with the predicted class" — checked as Pearson correlation with
    # the measured scores plus strong thresholded agreement.
    for design, quality in conformities.items():
        assert quality["pearson"] >= 0.8, design
        assert quality["conformity_with_classifier"] >= 0.8, design
