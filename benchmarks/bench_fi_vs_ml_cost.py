"""Section 1/2 motivation — fault-injection cost vs ML prediction cost.

The paper's premise: exhaustive FI campaigns scale poorly with design
complexity, while a GCN trained on FI results from *part* of a design
classifies the rest without further simulation.  This benchmark
quantifies that trade on our substrate: per design, the wall-clock cost
of the full campaign vs training the GCN on 80% of nodes and inferring
the remaining 20%, plus the simulation volume a user avoids.
"""

import time

import pytest

from benchmarks.conftest import DESIGNS
from repro.models import GCNClassifier
from repro.reporting import render_table


def test_fi_vs_ml_cost(benchmark, analyzers, artifact):
    rows = []

    def run():
        for design in DESIGNS:
            analyzer = analyzers[design]
            campaign = analyzer.campaign
            experiments = len(campaign.faults) * campaign.n_workloads

            started = time.perf_counter()
            model = GCNClassifier(seed=(0, "cost"))
            model.fit(analyzer.data, analyzer.split)
            train_seconds = time.perf_counter() - started

            started = time.perf_counter()
            model.predict()
            infer_seconds = time.perf_counter() - started

            avoided = int(analyzer.split.n_val / analyzer.data.n_nodes
                          * experiments)
            rows.append({
                "design": design,
                "fault experiments": experiments,
                "FI seconds": round(campaign.simulation_seconds, 2),
                "exp/s": f"{experiments / campaign.simulation_seconds:,.0f}",
                "GCN train s": round(train_seconds, 2),
                "GCN infer s": round(infer_seconds, 4),
                "experiments avoided (20% of design)": avoided,
            })
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = render_table(
        rows,
        title="FI campaign cost vs ML prediction cost "
              "(motivating trade of the paper)",
    )
    artifact("fi_vs_ml_cost.txt", table)

    # Shape: inference is orders of magnitude cheaper than the campaign
    # share it replaces.
    for row in rows:
        fi_per_experiment = row["FI seconds"] / row["fault experiments"]
        avoided_cost = fi_per_experiment * row[
            "experiments avoided (20% of design)"
        ]
        assert row["GCN infer s"] < avoided_cost
