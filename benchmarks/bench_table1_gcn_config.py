"""Table 1 — GCN network configuration via hyperparameter grid search.

The paper selects the Table 1 architecture (GCNConv 16/32/64 with a 0.3
dropout after the second convolution) by grid search (§3.3.2).  This
benchmark re-runs that search on the SDRAM-controller dataset —
sweeping depth/width stacks and dropout — and reports the ranking; it
also echoes the layer-by-layer Table 1 structure of the winning-family
model the library ships as the default.
"""

import pytest

from repro.models.gcn import (
    DEFAULT_DROPOUT,
    DEFAULT_HIDDEN_DIMS,
    build_gcn_stack,
)
from repro.nn import grid_search
from repro.reporting import render_table


def test_table1_grid_search(benchmark, analyzers, artifact):
    analyzer = analyzers["sdram_controller"]
    data, split = analyzer.data, analyzer.split
    a_norm = data.a_norm()

    def builder(hidden_dims, dropout, seed):
        return build_gcn_stack(
            data.n_features, 2, a_norm,
            hidden_dims=hidden_dims, dropout=dropout, seed=seed,
        )

    def run():
        return grid_search(
            builder, data.x, data.y_class,
            split.train_mask, split.val_mask,
            hidden_dim_options=((16,), (16, 32), (32, 64),
                                (16, 32, 64), (64, 64, 64)),
            dropout_options=(0.0, 0.3, 0.5),
            lr_options=(0.01,),
            epochs=150,
            seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    search_table = render_table(
        result.table(),
        title="Table 1 search — grid ranking on sdram_controller "
              "(validation accuracy)",
    )

    # Echo the shipped architecture layer by layer, as Table 1 does.
    stack = build_gcn_stack(data.n_features, 2, a_norm,
                            hidden_dims=DEFAULT_HIDDEN_DIMS,
                            dropout=DEFAULT_DROPOUT)
    rows = []
    previous = data.n_features
    for position, module in enumerate(stack.modules, start=1):
        kind = type(module).__name__
        if kind == "GCNConv":
            in_dim, out_dim = module.weight.shape
            rows.append({"layer": position,
                         "type": "Graph convolutional layer",
                         "in": "Input" if in_dim == data.n_features
                         and position == 1 else in_dim,
                         "out": out_dim, "values": "-"})
        elif kind == "ReLU":
            rows.append({"layer": position,
                         "type": "Rectified Linear Unit",
                         "in": "-", "out": "-", "values": "-"})
        elif kind == "Dropout":
            rows.append({"layer": position, "type": "Dropout Layer",
                         "in": "-", "out": "-", "values": module.p})
        elif kind == "LogSoftmax":
            rows.append({"layer": position, "type": "Log Softmax",
                         "in": 2, "out": 2, "values": "-"})
    config_table = render_table(rows, title="Table 1 — shipped GCN "
                                            "network configuration")
    artifact("table1_gcn_config.txt",
             search_table + "\n\n" + config_table)

    # Shape: a three-hidden-layer configuration from the Table 1 family
    # lands in the top half of the grid, and the best configuration is
    # within two points of the shipped default's family.
    points = result.points
    table1_like = [
        point for point in points
        if point.hidden_dims == DEFAULT_HIDDEN_DIMS
        and point.dropout == pytest.approx(DEFAULT_DROPOUT)
    ]
    assert table1_like, "Table 1 configuration missing from the grid"
    best = points[0].val_accuracy
    assert table1_like[0].val_accuracy >= best - 0.05
