"""Substrate performance — bit-parallel fault simulation scaling.

Not a paper artifact, but the property that makes the reproduction
tractable: the fault-injection engine evaluates every stuck-at machine
simultaneously in packed 64-bit words.  This benchmark measures
throughput (fault-experiments per second) against the scalar reference
path and across design sizes, and is the regression guard for the
engine's levelized/type-grouped scheduler.
"""

import numpy as np
import pytest

from repro.circuits import random_netlist
from repro.fi.faults import full_fault_universe
from repro.sim import BitParallelSimulator, Simulator, random_workload


@pytest.mark.parametrize("n_gates", [100, 400, 1600])
def test_fault_pass_scaling(benchmark, n_gates):
    netlist = random_netlist(
        n_inputs=12, n_gates=n_gates, n_flops=max(4, n_gates // 16),
        n_outputs=8, seed=5,
    )
    workload = random_workload(netlist, cycles=100, seed=1,
                               reset_input="in_0")
    faults = full_fault_universe(netlist)
    engine = BitParallelSimulator(netlist)
    fault_nets = np.array([fault.net_index for fault in faults])
    fault_values = np.array([fault.stuck_at for fault in faults])

    result = benchmark(
        engine.run_fault_pass, workload, fault_nets, fault_values
    )
    error_cycles, detection, latent = result
    assert len(error_cycles) == len(faults)
    benchmark.extra_info["fault_experiments"] = len(faults)
    benchmark.extra_info["cycles"] = workload.cycles


def test_golden_bitparallel_vs_scalar(benchmark):
    netlist = random_netlist(n_inputs=10, n_gates=400, n_flops=24,
                             n_outputs=8, seed=6)
    workload = random_workload(netlist, cycles=100, seed=2,
                               reset_input="in_0")
    engine = BitParallelSimulator(netlist)
    outputs = benchmark(engine.golden_outputs, workload)
    # random_netlist exports dangling nets as auxiliary outputs, so the
    # output count is at least the requested eight.
    assert outputs.shape[0] == 100 and outputs.shape[1] >= 8


def test_scalar_reference_speed(benchmark):
    netlist = random_netlist(n_inputs=10, n_gates=400, n_flops=24,
                             n_outputs=8, seed=6)
    workload = random_workload(netlist, cycles=100, seed=2,
                               reset_input="in_0")
    simulator = Simulator(netlist)
    trace = benchmark(simulator.run, workload)
    assert trace.cycles == 100
