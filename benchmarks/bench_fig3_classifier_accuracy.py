"""Figure 3 — critical-node classification accuracy.

Regenerates the paper's classifier comparison: GCN vs MLP, LoR, RFC,
SVM and EBM on all three designs.  Accuracies are averaged over five
stratified 80/20 splits (the validation folds of these open designs are
small, so a single split is noisy); the paper's single-split numbers
are printed alongside for shape comparison.

Expected shape (paper): the GCN wins on every design — 90.34% on the
SDRAM controller, 93.7% on OR1200 IF, 81.03% on OR1200 ICFSM — with
every baseline at or below 77/78/72%.
"""

import numpy as np
import pytest

from benchmarks.conftest import DESIGNS, PAPER
from repro.models import BASELINE_NAMES
from repro.reporting import grouped_bar_chart, render_table


def test_fig3_classifier_accuracy(benchmark, multi_split_results,
                                  artifact):
    def run():
        return {
            design: {
                name: float(np.mean([run[0] for run in runs]))
                for name, runs in multi_split_results[design].items()
            }
            for design in DESIGNS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for design in DESIGNS:
        row = {"design": design}
        row.update({
            name: f"{accuracy:.1%}"
            for name, accuracy in results[design].items()
        })
        row["paper GCN"] = f"{PAPER['accuracy'][design]:.1%}"
        row["paper best baseline"] = (
            f"{PAPER['baseline_ceiling'][design]:.0%}"
        )
        rows.append(row)

    chart = grouped_bar_chart(
        {design: results[design] for design in DESIGNS},
        title="Figure 3 — critical-node classification accuracy "
              "(mean over 5 splits)",
    )
    table = render_table(rows, title="Figure 3 data")

    # Statistical significance: pooled McNemar over the five splits,
    # GCN vs the strongest baseline per design.
    from repro.metrics import pooled_mcnemar

    significance_rows = []
    for design in DESIGNS:
        best_name = max(
            BASELINE_NAMES, key=lambda name: results[design][name]
        )
        gcn_runs = multi_split_results[design]["GCN"]
        baseline_runs = multi_split_results[design][best_name]
        mcnemar = pooled_mcnemar(
            [run[2] for run in gcn_runs],
            [run[3] for run in gcn_runs],
            [run[3] for run in baseline_runs],
        )
        significance_rows.append({
            "design": design,
            "GCN vs": best_name,
            "GCN-only correct": mcnemar.a_right_b_wrong,
            "baseline-only correct": mcnemar.a_wrong_b_right,
            "exact p": f"{mcnemar.p_value:.4f}",
        })
    significance_table = render_table(
        significance_rows,
        title="Figure 3 significance — pooled McNemar, GCN vs the "
              "best baseline",
    )
    artifact("fig3_classifier_accuracy.txt",
             chart + "\n\n" + table + "\n\n" + significance_table)

    # Shape assertions: the GCN wins on every design.
    for design in DESIGNS:
        gcn = results[design]["GCN"]
        best_baseline = max(
            results[design][name] for name in BASELINE_NAMES
        )
        assert gcn > best_baseline, (
            f"{design}: GCN {gcn:.3f} did not beat baselines "
            f"{best_baseline:.3f}"
        )
        # Within ~12 points of the paper's absolute number.
        assert abs(gcn - PAPER["accuracy"][design]) < 0.12
