"""Figure 5 — explainability analysis.

(a) Feature importance scores for an individual SDRAM-controller node,
    as produced by GNNExplainer (the paper's example node scores
    "Number of Connections" 3.06 and "Intrinsic State Probability of 0"
    1.75 highest).
(b) Aggregated feature rankings (Eq. 3) over explained nodes of all
    three designs, combined into the global importance map.

Expected shape (paper): "Number of connections" and the intrinsic state
probabilities are consistently the top-ranked features.
"""

import numpy as np
import pytest

from benchmarks.conftest import DESIGNS
from repro.explain import aggregate_importance, combine_importance
from repro.reporting import bar_chart, render_table

NODES_PER_DESIGN = 25


def test_fig5_explainability(benchmark, analyzers, artifact):
    per_design = {}
    single_node = {}

    def run():
        for design in DESIGNS:
            analyzer = analyzers[design]
            validation_nodes = np.flatnonzero(analyzer.split.val_mask)
            sample = [int(i) for i in validation_nodes[:NODES_PER_DESIGN]]
            explanations = analyzer.explain_nodes(sample)
            per_design[design] = aggregate_importance(explanations)
            if design == "sdram_controller":
                single_node[design] = explanations[0]
        return per_design

    benchmark.pedantic(run, rounds=1, iterations=1)

    explanation = single_node["sdram_controller"]
    fig5a = bar_chart(
        dict(zip(explanation.feature_names, explanation.feature_scores)),
        title=f"Figure 5(a) — feature importance for node "
              f"{explanation.node_name} "
              f"({'Critical' if explanation.predicted_class else 'Non-critical'})",
    )

    sections = [fig5a]
    for design in DESIGNS:
        sections.append(render_table(
            per_design[design].as_rows(),
            title=f"Feature ranking — {design} "
                  f"({per_design[design].n_explanations} nodes)",
        ))
    combined = combine_importance([per_design[d] for d in DESIGNS])
    sections.append(render_table(
        combined.as_rows(),
        title="Figure 5(b) — aggregated feature rankings, all designs "
              "(Eq. 3; lower = more important)",
    ))
    artifact("fig5_explainability.txt", "\n\n".join(sections))

    # Shape: connection count / state probabilities dominate the global
    # map — the paper's central explainability finding.
    top_two = combined.ranked_features()[:2]
    dominant = {
        "Number of connections",
        "Intrinsic state probability of 0",
        "Intrinsic state probability of 1",
        "State transition probability",
    }
    assert set(top_two) <= dominant
    assert "Boolean inverting tag" not in top_two
