"""GNNExplainer throughput: batched single-core vs multi-core.

Explaining every node of a design is what makes the paper's Table 2
and Figure 5 affordable, so this benchmark tracks the explainer
engine's headline numbers in machine-readable form:
``results/BENCH_explain.json`` records nodes/sec for the batched
engine on one core and fanned over fork workers — plus a frozen
``seed_reference`` (the pre-optimization per-node loop measured on the
same design) so regressions show up as a ratio < 1.  Both timed
configurations are also checked bitwise-identical per node, the
engine's core contract.

Runs two ways:

* ``pytest benchmarks/bench_explain.py`` — full measurement over all
  nodes of the largest design, writes the JSON artifact.
* ``python benchmarks/bench_explain.py [--smoke] [--jobs N]`` —
  standalone; ``--smoke`` explains a strided node sample for the CI
  guard (exercises batching + the fork path end to end, skips the
  artifact write).
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks.hostinfo import host_metadata  # pytest (package)
except ImportError:
    from hostinfo import host_metadata  # standalone script

RESULTS_DIR = Path(__file__).parent / "results"
ARTIFACT = "BENCH_explain.json"

DESIGN = "or1200_if"

#: Pre-optimization explainer (one dense optimization per node, fresh
#: subgraph extraction and per-epoch array allocations) measured on a
#: stratified 51-node sample of or1200_if at the commit that introduced
#: this benchmark.  Frozen so every later run reports the cumulative
#: engine speedup, not just run-to-run noise.
SEED_REFERENCE = {
    "design": "or1200_if",
    "n_nodes": 504,
    "sample_nodes": 51,
    "sample_stride": 10,
    "seconds": 28.339,
    "nodes_per_sec": 1.7996,
    "epochs": 200,
}


def _build_analyzer():
    from repro import build_design
    from repro.core import AnalyzerConfig, FaultCriticalityAnalyzer

    analyzer = FaultCriticalityAnalyzer(
        build_design(DESIGN), AnalyzerConfig(seed=0)
    )
    analyzer.classifier  # materialize the expensive stages untimed
    return analyzer


def _measure(analyzer, nodes, jobs):
    """Wall clock for one explainer configuration, cold caches."""
    from repro.explain import GNNExplainer

    explainer = GNNExplainer(
        analyzer.classifier, analyzer.data,
        seed=(analyzer.config.seed, "explainer"),
    )
    started = time.perf_counter()
    explanations = explainer.explain_many(nodes, jobs=jobs)
    elapsed = time.perf_counter() - started
    return elapsed, explanations


def run_benchmark(analyzer=None, stride=1, jobs=2, repeats=2):
    """Measure single-core and parallel runs, assemble the payload.

    Rounds are interleaved (single, parallel, single, parallel) and
    each configuration keeps its best, so slow host-level drift lands
    evenly on both configurations instead of on whichever ran last.
    """
    if analyzer is None:
        analyzer = _build_analyzer()
    nodes = list(range(0, analyzer.data.n_nodes, stride))

    single_s = parallel_s = None
    single = parallel = None
    for _ in range(repeats):
        elapsed, single = _measure(analyzer, nodes, jobs=1)
        if single_s is None or elapsed < single_s:
            single_s = elapsed
        elapsed, parallel = _measure(analyzer, nodes, jobs=jobs)
        if parallel_s is None or elapsed < parallel_s:
            parallel_s = elapsed
    for left, right in zip(single, parallel):
        assert np.array_equal(left.feature_scores, right.feature_scores)
        assert left.edge_importance == right.edge_importance

    def rates(seconds):
        return {
            "seconds": round(seconds, 3),
            "nodes_per_sec": round(len(nodes) / seconds, 3),
        }

    single_rate = len(nodes) / single_s
    return {
        "design": analyzer.data.design,
        "n_nodes": analyzer.data.n_nodes,
        "explained_nodes": len(nodes),
        "epochs": analyzer.explainer.config.epochs,
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "host": host_metadata(best_of=repeats),
        "batched_single_core": rates(single_s),
        "batched_parallel": rates(parallel_s),
        "parallel_speedup_vs_single_core": round(
            single_s / parallel_s, 2
        ),
        "seed_reference": SEED_REFERENCE,
        "single_core_speedup_vs_seed": round(
            single_rate / SEED_REFERENCE["nodes_per_sec"], 2
        ),
    }


def test_explain_throughput(analyzers, benchmark, artifact):
    payload = {}

    def run():
        payload.update(run_benchmark(analyzer=analyzers[DESIGN]))
        return payload

    benchmark.pedantic(run, rounds=1, iterations=1)
    # The batched engine on ONE core must stay >= 3x the per-node loop.
    assert payload["single_core_speedup_vs_seed"] >= 3.0
    artifact(ARTIFACT, json.dumps(payload, indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="strided node sample, no artifact "
                             "(the CI guard)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="fork workers for the parallel leg "
                             "(0 = all cores)")
    parser.add_argument("--out", metavar="FILE.json",
                        help="write the payload here instead of "
                             f"results/{ARTIFACT}")
    args = parser.parse_args(argv)

    stride = 25 if args.smoke else 1
    payload = run_benchmark(stride=stride, jobs=args.jobs,
                            repeats=1 if args.smoke else 2)
    text = json.dumps(payload, indent=2)
    print(text)
    if not args.smoke:
        out = Path(args.out) if args.out else RESULTS_DIR / ARTIFACT
        out.parent.mkdir(exist_ok=True)
        out.write_text(text + "\n", encoding="utf-8")
        print(f"\nartifact -> {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))
    sys.exit(main())
