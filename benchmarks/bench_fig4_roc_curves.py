"""Figure 4 — ROC curves of all classifiers on each design.

Regenerates the paper's three ROC panels (4a SDRAM, 4b OR1200 IF,
4c OR1200 ICFSM): for each design, the vertically-averaged
validation-fold ROC curve and mean AUC of the GCN and every baseline
over five stratified splits, rendered as an ASCII plot plus an AUC
table.

Expected shape (paper): the GCN posts the highest AUC on every design —
0.92 / 0.90 / 0.86.  On our substrate the GCN leads clearly on the two
larger designs; on the smallest (ICFSM) the random forest matches it
within ~0.01 AUC while the GCN keeps the accuracy lead.
"""

import pytest

from benchmarks.conftest import DESIGNS, PAPER
from repro.metrics import average_curves
from repro.reporting import render_table, roc_ascii


def test_fig4_roc_curves(benchmark, multi_split_results, artifact):
    def run():
        return {
            design: {
                name: average_curves([run[1] for run in runs])
                for name, runs in multi_split_results[design].items()
            }
            for design in DESIGNS
        }

    curves_by_design = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = []
    rows = []
    for panel, design in zip("abc", DESIGNS):
        curves = curves_by_design[design]
        sections.append(roc_ascii(
            curves,
            title=f"Figure 4({panel}) — {design} "
                  "(vertically averaged over 5 splits)",
        ))
        row = {"design": design}
        row.update({
            name: round(curve.auc, 3) for name, curve in curves.items()
        })
        row["paper GCN AUC"] = PAPER["auc"][design]
        rows.append(row)
    table = render_table(rows, title="Figure 4 — mean AUC summary")
    artifact("fig4_roc_curves.txt", "\n\n".join(sections) + "\n\n" + table)

    for design in DESIGNS:
        curves = curves_by_design[design]
        gcn_auc = curves["GCN"].auc
        best_baseline = max(
            curve.auc for name, curve in curves.items() if name != "GCN"
        )
        # Shape: GCN AUC leads or ties every baseline (<= 0.02 slack on
        # the smallest design's noisy folds) and sits in the paper's
        # band.
        assert gcn_auc >= best_baseline - 0.02, (
            f"{design}: GCN AUC {gcn_auc:.3f} well below best baseline "
            f"{best_baseline:.3f}"
        )
        assert gcn_auc >= 0.8
