"""Artifact store: warm rerun of the full CLI pipeline vs cold.

``repro analyze`` runs parse -> simulate -> inject -> featurize ->
train -> report.  With ``--store DIR`` every stage output lands in the
content-addressed artifact store keyed by the sha256 of its input
closure, so a second invocation with identical inputs replays the
whole pipeline from disk.  This benchmark commits the headline claim
in machine-readable form: ``results/BENCH_store.json`` records the
cold and warm wall clocks of the in-process CLI on the largest
evaluation design and asserts the warm stdout is byte-for-byte
identical to the cold stdout — the store may only change *when* work
happens, never *what* is printed.

Runs two ways:

* ``pytest benchmarks/bench_store.py`` — full measurement, writes the
  JSON artifact and asserts the >=20x acceptance bar.
* ``python benchmarks/bench_store.py [--smoke]`` — standalone;
  ``--smoke`` shrinks the suite for the CI guard (exercises the
  cold-miss write path, the warm-hit read path, and the byte-identity
  check end to end, skips the artifact write and the 20x bar).
"""

import argparse
import contextlib
import io
import json
import sys
import tempfile
import time
from pathlib import Path

try:
    from benchmarks.hostinfo import host_metadata  # pytest (package)
except ImportError:
    from hostinfo import host_metadata  # standalone script

RESULTS_DIR = Path(__file__).parent / "results"
ARTIFACT = "BENCH_store.json"

DESIGN = "or1200_if"
WORKLOADS = 8
CYCLES = 200
WARM_REPEATS = 3


def _run_cli(argv):
    """Run the in-process CLI, returning (stdout, seconds)."""
    from repro.__main__ import main

    captured = io.StringIO()
    started = time.perf_counter()
    with contextlib.redirect_stdout(captured):
        code = main(argv)
    elapsed = time.perf_counter() - started
    assert code == 0, f"repro {' '.join(argv)} exited {code}"
    return captured.getvalue(), elapsed


def run_benchmark(design=DESIGN, n_workloads=WORKLOADS, cycles=CYCLES,
                  warm_repeats=WARM_REPEATS, smoke=False):
    """Measure cold vs warm ``repro analyze``, assemble the payload."""
    from repro.store import ArtifactStore

    with tempfile.TemporaryDirectory() as directory:
        argv = [
            "analyze", design,
            "--workloads", str(n_workloads),
            "--cycles", str(cycles),
            "--store", directory,
        ]
        cold_stdout, cold_seconds = _run_cli(argv)

        best_warm = None
        warm_stdout = None
        for _ in range(warm_repeats):
            warm_stdout, elapsed = _run_cli(argv)
            if best_warm is None or elapsed < best_warm:
                best_warm = elapsed
        stats = ArtifactStore(directory).stats()

    payload = {
        "design": design,
        "workloads": n_workloads,
        "cycles_per_workload": cycles,
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(best_warm, 3),
        "speedup": round(cold_seconds / best_warm, 2),
        "stdout_identical": warm_stdout == cold_stdout,
        "store": {
            "entries": stats["entries"],
            "bytes": stats["bytes"],
            "hits": stats["hits"],
            "misses": stats["misses"],
            "by_kind": stats["by_kind"],
        },
        "host": host_metadata(best_of=warm_repeats),
    }
    del smoke  # same suite shape either way; the caller shrinks it
    return payload


def test_store_warm_speedup(benchmark, artifact):
    payload = {}

    def run():
        payload.update(run_benchmark())
        return payload

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert payload["stdout_identical"]
    # The store acceptance bar: a warm rerun of the full pipeline on
    # the largest design replays from disk >=20x faster than cold.
    assert payload["speedup"] >= 20.0
    artifact(ARTIFACT, json.dumps(payload, indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny suite, single warm repeat, no "
                             "artifact, no 20x bar (the CI guard)")
    parser.add_argument("--out", metavar="FILE.json",
                        help="write the payload here instead of "
                             f"results/{ARTIFACT}")
    args = parser.parse_args(argv)

    if args.smoke:
        payload = run_benchmark(design="sdram", n_workloads=2,
                                cycles=60, warm_repeats=1, smoke=True)
    else:
        payload = run_benchmark()
    text = json.dumps(payload, indent=2)
    print(text)
    if not payload["stdout_identical"]:
        print("FAIL: warm stdout differs from cold stdout",
              file=sys.stderr)
        return 1
    if not args.smoke:
        if payload["speedup"] < 20.0:
            print(f"FAIL: speedup {payload['speedup']}x below the "
                  "20x acceptance bar", file=sys.stderr)
            return 1
        out = Path(args.out) if args.out else RESULTS_DIR / ARTIFACT
        out.parent.mkdir(exist_ok=True)
        out.write_text(text + "\n", encoding="utf-8")
        print(f"\nartifact -> {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))
    sys.exit(main())
