"""Node criticality-score regression on the OR1200 fetch stage (§3.4).

Beyond binary Critical/Non-critical labels, the framework predicts
*continuous* criticality scores, letting two critical nodes be
prioritized against each other.  This example trains both GCN heads on
the OR1200 IF module and examines their agreement — the paper reports
over 85% conformity between the regression scores and the classifier.

    python examples/or1200_criticality_scores.py
"""

import numpy as np

from repro import AnalyzerConfig, FaultCriticalityAnalyzer, build_design
from repro.metrics import pearson, spearman
from repro.reporting import render_table


def main() -> None:
    analyzer = FaultCriticalityAnalyzer(
        build_design("or1200_if"), AnalyzerConfig(seed=0)
    )

    print(f"Design: {analyzer.netlist}")
    print(f"Classifier accuracy (held-out): "
          f"{analyzer.validation_accuracy():.1%}")

    mask = analyzer.split.val_mask
    predicted = analyzer.regressor.predict()
    measured = analyzer.data.y_score
    quality = analyzer.regression_quality()

    print(f"\nRegression quality on held-out nodes:")
    print(f"  Pearson r  (predicted vs measured): "
          f"{quality['pearson']:.3f}")
    print(f"  Spearman r (rank agreement):        "
          f"{spearman(predicted[mask], measured[mask]):.3f}")
    print(f"  Conformity with classifier at 0.5:  "
          f"{quality['conformity_with_classifier']:.1%}")
    print(f"  Conformity with FI ground truth:    "
          f"{quality['conformity_with_labels']:.1%}")

    # Degrees of criticality among nodes the classifier calls Critical —
    # exactly the paper's motivating scenario (0.55 vs 0.75 nodes).
    predictions = analyzer.classifier.predict()
    critical_validation = np.flatnonzero(mask & (predictions == 1))
    spread = predicted[critical_validation]
    print(f"\nAmong {len(critical_validation)} held-out nodes classified "
          f"Critical, predicted scores span "
          f"[{spread.min():.2f}, {spread.max():.2f}] "
          f"(median {np.median(spread):.2f}) — the classifier alone "
          "cannot rank these.")

    order = critical_validation[np.argsort(-spread)]
    rows = []
    for index in list(order[:5]) + list(order[-5:]):
        rows.append({
            "node": analyzer.data.node_names[index],
            "predicted score": round(float(predicted[index]), 3),
            "measured score": round(float(measured[index]), 3),
        })
    print()
    print(render_table(
        rows, title="Most vs least critical among 'Critical' nodes"
    ))

    # Score calibration by decile.
    bins = np.linspace(0, 1, 6)
    rows = []
    for low, high in zip(bins[:-1], bins[1:]):
        members = mask & (measured >= low) & (measured < high + 1e-9)
        if members.sum() == 0:
            continue
        rows.append({
            "measured range": f"[{low:.1f}, {high:.1f})",
            "nodes": int(members.sum()),
            "mean predicted": round(float(predicted[members].mean()), 3),
        })
    print()
    print(render_table(rows, title="Score calibration (held-out nodes)"))


if __name__ == "__main__":
    main()
