"""Quickstart: end-to-end fault-criticality analysis of one design.

Runs the complete Figure 2 pipeline on the OR1200 instruction-cache
FSM — the smallest evaluation design, so the whole flow (workload
generation, fault-injection campaign, feature extraction, GCN training,
evaluation) finishes in well under a minute:

    python examples/quickstart.py
"""

from repro import AnalyzerConfig, FaultCriticalityAnalyzer, build_design
from repro.reporting import render_table


def main() -> None:
    design = build_design("or1200_icfsm")
    print(f"Design under analysis: {design}")

    analyzer = FaultCriticalityAnalyzer(design, AnalyzerConfig(seed=0))

    # Stage by stage (each property computes lazily and caches):
    print(f"\n1. Workloads: {len(analyzer.workloads)} diverse suites of "
          f"{analyzer.workloads[0].cycles} cycles each")

    campaign = analyzer.campaign
    print(f"2. Fault injection: {len(campaign.faults)} stuck-at faults x "
          f"{campaign.n_workloads} workloads in "
          f"{campaign.simulation_seconds:.1f}s "
          f"(bit-parallel, all faults per pass)")

    dataset = analyzer.dataset
    print(f"3. Algorithm 1 dataset: {dataset.n_nodes} nodes, "
          f"{dataset.critical_fraction:.1%} Critical at threshold "
          f"{dataset.threshold}")

    print(f"4. Features: {analyzer.features.n_features} per node "
          f"({', '.join(analyzer.features.feature_names)})")

    accuracy = analyzer.validation_accuracy()
    roc = analyzer.validation_roc()
    print(f"5. GCN classifier: {accuracy:.1%} accuracy, "
          f"AUC {roc.auc:.2f} on the held-out 20% of nodes")

    # Most critical nodes by predicted score — the fortification list.
    scores = analyzer.regressor.predict()
    order = scores.argsort()[::-1][:8]
    rows = [
        {
            "node": analyzer.data.node_names[index],
            "predicted score": round(float(scores[index]), 3),
            "ground truth": round(float(analyzer.data.y_score[index]), 3),
        }
        for index in order
    ]
    print()
    print(render_table(rows, title="Top predicted-critical nodes"))


if __name__ == "__main__":
    main()
