"""Functional-safety analysis of the SDRAM controller (case 1).

Walks the FuSa engineer's workflow the paper motivates: characterize
the design, run the stuck-at campaign over mode-skewed host traffic,
inspect per-workload fault reports, train the GCN, and produce the
fortification priority list — showing how criticality concentrates in
the command FSM and refresh scheduler rather than the wide address
datapath.

    python examples/sdram_safety_analysis.py
"""

import numpy as np

from repro import AnalyzerConfig, FaultCriticalityAnalyzer, build_design
from repro.fi import format_report
from repro.netlist import summarize
from repro.reporting import bar_chart, render_table


def main() -> None:
    design = build_design("sdram")
    stats = summarize(design)
    print(render_table([stats.as_dict()], title="Design profile"))
    print("\nCell mix:", ", ".join(
        f"{cell}x{count}" for cell, count in stats.cell_histogram.items()
    ))

    analyzer = FaultCriticalityAnalyzer(design, AnalyzerConfig(seed=0))

    # --- campaign view ------------------------------------------------
    campaign = analyzer.campaign
    print(f"\nCampaign: {len(campaign.faults)} faults x "
          f"{campaign.n_workloads} workloads, severity "
          f"{campaign.severity:.0%} error-rate threshold")
    coverages = {
        name: campaign.workload_report(name).coverage()
        for name in campaign.workload_names[:6]
    }
    print(bar_chart(coverages, title="\nDangerous-fault coverage by "
                                     "workload (first 6)", unit=""))

    print("\n" + format_report(
        campaign.workload_report(campaign.workload_names[0]), limit=6
    ))

    # --- criticality structure ----------------------------------------
    from repro.fi import criticality_by_cell_type

    rows = criticality_by_cell_type(analyzer.dataset)
    print()
    print(render_table(rows, title="Criticality by cell type"))

    # --- model + fortification list ------------------------------------
    print(f"\nGCN validation accuracy: "
          f"{analyzer.validation_accuracy():.1%} "
          f"(AUC {analyzer.validation_roc().auc:.2f})")

    scores = analyzer.regressor.predict()
    val_nodes = np.flatnonzero(analyzer.split.val_mask)
    ranked = val_nodes[np.argsort(-scores[val_nodes])][:10]
    rows = [
        {
            "rank": position + 1,
            "node": analyzer.data.node_names[index],
            "predicted": round(float(scores[index]), 3),
            "measured": round(float(analyzer.data.y_score[index]), 3),
            "class": "Critical"
            if analyzer.classifier.predict()[index] else "Non-critical",
        }
        for position, index in enumerate(ranked)
    ]
    print()
    print(render_table(
        rows,
        title="Fortification priorities (held-out nodes, no FI needed)",
    ))


if __name__ == "__main__":
    main()
