"""Using the fault-injection substrate directly (no ML).

The FI layer is a complete campaign engine in its own right — the
stand-in for the commercial fault simulator in the paper's flow.  This
example runs it standalone on the instruction-cache FSM: fault-universe
construction, bit-parallel campaign execution, detection-latency
analysis, latent-fault identification, and the effect of functional
observation strobes.

    python examples/fault_injection_deep_dive.py
"""

import numpy as np

from repro import build_design
from repro.fi import (
    dataset_from_campaign,
    full_fault_universe,
    run_campaign,
)
from repro.fi.report import FaultClass
from repro.reporting import bar_chart, render_table
from repro.sim import design_workloads


def main() -> None:
    design = build_design("or1200_icfsm")
    faults = full_fault_universe(design)
    workloads = design_workloads(design.name, design, count=12,
                                 cycles=200, seed=0)
    print(f"{design}\nFault universe: {len(faults)} stuck-at faults; "
          f"{len(workloads)} workloads x {workloads[0].cycles} cycles")

    campaign = run_campaign(design, workloads)
    experiments = len(faults) * len(workloads)
    rate = experiments / campaign.simulation_seconds
    print(f"Campaign: {experiments} fault-experiments in "
          f"{campaign.simulation_seconds:.1f}s "
          f"({rate:,.0f} experiments/s, bit-parallel)")

    # --- classification mix per workload --------------------------------
    rows = []
    for name in campaign.workload_names[:8]:
        report = campaign.workload_report(name)
        counts = report.counts()
        rows.append({
            "workload": name,
            "dangerous": counts[FaultClass.DANGEROUS.value],
            "latent": counts[FaultClass.LATENT.value],
            "benign": counts[FaultClass.BENIGN.value],
            "coverage": f"{report.coverage():.0%}",
        })
    print()
    print(render_table(rows, title="Per-workload fault classification"))

    # --- detection latency ----------------------------------------------
    from repro.fi import always_latent_faults, detection_latency_histogram

    histogram = detection_latency_histogram(campaign)
    print()
    print(bar_chart(histogram, title="Detection latency distribution "
                                     "(all observed faults)"))

    # --- latent faults: corrupt state, never observed --------------------
    latent_names = sorted(always_latent_faults(campaign))
    print(f"\nFaults latent under EVERY workload: {len(latent_names)}")
    for name in latent_names[:6]:
        print(f"  {name}")

    # --- observation strobes matter ---------------------------------------
    raw = run_campaign(design, workloads[:4], observation=None)
    strobed = run_campaign(design, workloads[:4], observation="auto")
    print("\nFunctional-observation effect (4 workloads):")
    print(f"  pin-level mismatches:  {int(raw.error_cycles.sum()):,} "
          "error-cycles")
    print(f"  functional mismatches: "
          f"{int(strobed.error_cycles.sum()):,} error-cycles")

    dataset = dataset_from_campaign(campaign)
    print(f"\nAlgorithm 1 output: {dataset.n_nodes} nodes, "
          f"{dataset.critical_fraction:.1%} critical, score range "
          f"[{dataset.scores.min():.2f}, {dataset.scores.max():.2f}]")


if __name__ == "__main__":
    main()
