"""Interpreting GCN predictions with GNNExplainer (§3.5).

For individual nodes of the SDRAM controller, learns feature and edge
masks explaining the model's Critical/Non-critical calls, then
aggregates per-node feature rankings (Eq. 3) into the global feature
importance map of Figure 5(b).

    python examples/explainability_report.py
"""

import numpy as np

from repro import AnalyzerConfig, FaultCriticalityAnalyzer, build_design
from repro.explain import aggregate_importance
from repro.reporting import bar_chart, render_table


def main() -> None:
    analyzer = FaultCriticalityAnalyzer(
        build_design("sdram"), AnalyzerConfig(seed=0)
    )
    print(f"GCN accuracy: {analyzer.validation_accuracy():.1%}")

    # --- one node, in detail (Figure 5a) -------------------------------
    validation_nodes = np.flatnonzero(analyzer.split.val_mask)
    node = int(validation_nodes[3])
    explanation = analyzer.explainer.explain(node)
    label = "Critical" if explanation.predicted_class else "Non-critical"
    print(f"\nExplaining node {explanation.node_name} "
          f"(predicted {label}):")
    print(bar_chart(
        dict(zip(explanation.feature_names,
                 explanation.feature_scores)),
        title="Feature importance scores (mean-1 normalized)",
    ))
    print("\nMost influential neighborhood edges:")
    for source, target, weight in explanation.top_edges(5):
        print(f"  {analyzer.data.node_names[source]:>14} -> "
              f"{analyzer.data.node_names[target]:<14} mask={weight:.2f}")

    # --- global importance map (Figure 5b) -----------------------------
    sample = [int(index) for index in validation_nodes[:30]]
    explanations = analyzer.explain_nodes(sample)
    importance = aggregate_importance(explanations)
    print()
    print(render_table(
        importance.as_rows(),
        title=f"Global feature importance over {len(sample)} nodes "
              "(Eq. 3: lower average rank = more important)",
    ))

    top = importance.ranked_features()[0]
    print(f"\n'{top}' is the dominant driver of criticality calls, "
          "matching the paper's finding that connection count and state "
          "probabilities dominate.")


if __name__ == "__main__":
    main()
