"""Bring-your-own-design flow.

Shows how a user applies the framework to a new design: describe it
with the word-level :class:`CircuitBuilder` and FSM synthesizer (or
parse an existing structural-Verilog netlist), export/import Verilog,
and run the analyzer with generic constrained-random workloads.

The demo design is a small packet-handshake engine: a receive FSM with
a length down-counter, a checksum accumulator, and status outputs.

    python examples/custom_design_flow.py
"""

from repro import AnalyzerConfig, FaultCriticalityAnalyzer
from repro.circuits import CircuitBuilder, FsmSpec, synthesize_fsm
from repro.circuits.library import down_timer
from repro.netlist import from_verilog, summarize, to_verilog, validate
from repro.reporting import render_table


def build_packet_engine():
    """A receive engine: WAIT -> HEADER -> PAYLOAD(len) -> CHECK."""
    builder = CircuitBuilder("packet_engine")
    reset = builder.input("reset")
    valid = builder.input("valid")
    data = builder.input_bus("data", 8)
    last = builder.input("last")

    # Payload timer: loaded from the header byte's low nibble.
    load_length = builder.buf(reset)  # patched to the FSM below
    timer = down_timer(builder, 4, load_value=9, load=load_length,
                       reset=reset)

    spec = FsmSpec(
        "rx", states=["WAIT", "HEADER", "PAYLOAD", "CHECK"],
        reset_state="WAIT",
    )
    spec.transition("WAIT", "HEADER", when="valid")
    spec.transition("HEADER", "PAYLOAD", when="valid")
    spec.transition("PAYLOAD", "CHECK", when="timer_done | last")
    spec.transition("CHECK", "WAIT")
    spec.moore_output("busy", states=["HEADER", "PAYLOAD", "CHECK"])
    spec.moore_output("accept", states=["CHECK"])

    fsm = synthesize_fsm(
        spec, builder,
        inputs={"valid": valid, "timer_done": timer.done, "last": last},
        reset=reset, encoding="one-hot",
    )
    from repro.circuits.fsm import _rewire_input

    _rewire_input(builder, load_length, 0,
                  builder.and_(fsm.state_bits["HEADER"], valid))

    # Checksum: XOR-accumulate payload bytes.
    accumulate = builder.and_(fsm.state_bits["PAYLOAD"], valid)
    checksum = []
    for bit in range(8):
        flop = builder.netlist.add_gate("DFFR", [reset, reset])
        mixed = builder.xor(flop, data[bit])
        held = builder.mux(accumulate, flop, mixed)
        _rewire_input(builder, flop, 0, held)
        checksum.append(flop)

    builder.output(fsm.outputs["busy"], "busy")
    builder.output(fsm.outputs["accept"], "accept")
    builder.output_bus(checksum, "checksum")
    builder.output_bus(timer.value, "remaining")
    return builder.netlist


def main() -> None:
    design = build_packet_engine()
    validate(design)
    print(render_table([summarize(design).as_dict()],
                       title="Custom design profile"))

    # Round-trip through structural Verilog — the interchange format
    # for netlists synthesized outside this framework.
    verilog = to_verilog(design)
    print(f"\nVerilog export: {len(verilog.splitlines())} lines "
          f"(showing the first 8)")
    for line in verilog.splitlines()[:8]:
        print(f"  {line}")
    reparsed = from_verilog(verilog)
    validate(reparsed)
    assert reparsed.n_gates == design.n_gates
    print("Round-trip OK: gate-for-gate identical.")

    # Unknown designs fall back to constrained-random workloads and
    # compare every output on every cycle.  With that much
    # observability on a tiny design, almost any stuck-at fault is
    # functionally fatal, so this design's FuSa policy sets a high
    # severity: only faults corrupting most cycles count as Dangerous.
    analyzer = FaultCriticalityAnalyzer(
        reparsed,
        AnalyzerConfig(n_workloads=12, workload_cycles=150, seed=0,
                       severity=0.6),
    )
    summary = analyzer.summary()
    print()
    print(render_table([summary], title="Analysis summary"))
    print(f"\nBaselines: " + ", ".join(
        f"{name} {accuracy:.1%}"
        for name, accuracy in analyzer.baseline_accuracies().items()
    ))


if __name__ == "__main__":
    main()
