"""Workload sensitivity of node criticality (the paper's premise).

Criticality is not intrinsic to a gate — it depends on how the
application exercises the design.  This example runs separate
single-profile campaigns on the SDRAM controller (read-only streaming,
write-only bursts, idle/refresh-only) and shows nodes whose criticality
swings with the workload mix, plus the statistical confidence the
campaign gives each score.

    python examples/workload_sensitivity.py
"""

import numpy as np

from repro import build_design
from repro.fi import dataset_from_campaign, run_campaign
from repro.reporting import render_table
from repro.sim import sdram_workload


def profile_campaign(design, profile_name, **kwargs):
    workloads = [
        sdram_workload(design, cycles=200, seed=(profile_name, index),
                       name=f"{profile_name}[{index}]", **kwargs)
        for index in range(8)
    ]
    campaign = run_campaign(design, workloads)
    return dataset_from_campaign(campaign)


def main() -> None:
    design = build_design("sdram")
    print(f"{design}\nRunning three single-profile campaigns...")

    profiles = {
        "read-only": dict(request_rate=0.6, write_fraction=0.0),
        "write-only": dict(request_rate=0.6, write_fraction=1.0),
        "idle/refresh": dict(request_rate=0.0, write_fraction=0.0),
    }
    datasets = {
        name: profile_campaign(design, name, **kwargs)
        for name, kwargs in profiles.items()
    }

    names = datasets["read-only"].node_names
    scores = np.column_stack(
        [datasets[profile].scores for profile in profiles]
    )
    swing = scores.max(axis=1) - scores.min(axis=1)

    # Nodes whose criticality depends most on the application.
    order = np.argsort(-swing)[:12]
    rows = []
    for index in order:
        row = {"node": names[index]}
        for position, profile in enumerate(profiles):
            row[profile] = round(float(scores[index, position]), 2)
        row["swing"] = round(float(swing[index]), 2)
        rows.append(row)
    print()
    print(render_table(
        rows, title="Most workload-sensitive nodes "
                    "(criticality per application profile)",
    ))

    # Aggregate view: how much of the design is mode-dependent?
    stable_critical = int(((scores >= 0.5).all(axis=1)).sum())
    stable_benign = int(((scores < 0.5).all(axis=1)).sum())
    mode_dependent = len(names) - stable_critical - stable_benign
    print(f"\nOf {len(names)} nodes: {stable_critical} critical under "
          f"every profile, {stable_benign} benign under every profile, "
          f"{mode_dependent} switch with the application mix — the "
          "reason Algorithm 1 aggregates over diverse workloads.")

    # Statistical confidence on the aggregated scores.
    read_only = datasets["read-only"]
    low, high = read_only.confidence_intervals(0.95)
    widths = high - low
    print(f"\n95% Wilson interval width on 8-workload scores: "
          f"mean {widths.mean():.2f}, max {widths.max():.2f} — "
          "doubling the suite narrows these (see "
          "CriticalityDataset.confidence_intervals).")


if __name__ == "__main__":
    main()
